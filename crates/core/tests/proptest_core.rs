//! Property tests for the `ugraph-core` substrate: bitset algebra,
//! CSR construction invariants, subgraph transformations, degeneracy
//! orders and component labelings.

use proptest::prelude::*;
use ugraph_core::bitset::BitSet;
use ugraph_core::{subgraph, Components, GraphBuilder, UncertainGraph};

fn arb_graph(max_n: usize) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_n, any::<u64>(), 0.05f64..0.9).prop_map(|(n, seed, density)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < density {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                }
            }
        }
        b.build()
    })
}

fn arb_key_sets(len: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        proptest::collection::vec(0..len, 0..len),
        proptest::collection::vec(0..len, 0..len),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_algebra_laws((a_keys, b_keys) in arb_key_sets(192)) {
        use std::collections::BTreeSet;
        let len = 192;
        let a = BitSet::from_iter_with_len(len, a_keys.iter().copied());
        let b = BitSet::from_iter_with_len(len, b_keys.iter().copied());
        let sa: BTreeSet<usize> = a_keys.iter().copied().collect();
        let sb: BTreeSet<usize> = b_keys.iter().copied().collect();

        // Cardinality matches the set model.
        prop_assert_eq!(a.count(), sa.len());
        // Intersection model.
        let mut i = a.clone();
        i.intersect_with(&b);
        let si: Vec<usize> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(i.iter().collect::<Vec<_>>(), si.clone());
        prop_assert_eq!(a.intersection_count(&b), si.len());
        prop_assert_eq!(a.intersects(&b), !si.is_empty());
        // Union model.
        let mut u = a.clone();
        u.union_with(&b);
        let su: Vec<usize> = sa.union(&sb).copied().collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(), su);
        // Difference model.
        let mut d = a.clone();
        d.difference_with(&b);
        let sd: Vec<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(d.iter().collect::<Vec<_>>(), sd);
        // De Morgan-ish check: |A| = |A∩B| + |A\B|.
        prop_assert_eq!(a.count(), i.count() + d.count());
        // Subset relations.
        prop_assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        prop_assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
    }

    #[test]
    fn csr_invariants_hold_for_arbitrary_graphs(g in arb_graph(40)) {
        prop_assert!(g.check_invariants().is_ok());
        // Degree sums to 2m.
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
        // edges() yields each edge once, normalized and sorted.
        let edges: Vec<_> = g.edges().collect();
        prop_assert_eq!(edges.len(), g.num_edges());
        for w in edges.windows(2) {
            prop_assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        for (u, v, p) in edges {
            prop_assert!(u < v);
            prop_assert_eq!(g.edge_prob_raw(v, u), Some(p));
        }
    }

    #[test]
    fn alpha_prune_keeps_exactly_heavy_edges(g in arb_graph(30), alpha in 0.05f64..1.0) {
        let pruned = subgraph::prune_below_alpha(&g, alpha).unwrap();
        prop_assert_eq!(pruned.num_vertices(), g.num_vertices());
        for (u, v, p) in g.edges() {
            prop_assert_eq!(pruned.edge_prob_raw(u, v).is_some(), p >= alpha);
        }
        for (u, v, p) in pruned.edges() {
            prop_assert_eq!(g.edge_prob_raw(u, v), Some(p));
        }
    }

    #[test]
    fn degeneracy_order_is_a_valid_elimination(g in arb_graph(30)) {
        let (order, d) = subgraph::degeneracy_order(&g);
        prop_assert_eq!(order.len(), g.num_vertices());
        // Each vertex, at its elimination point, has ≤ d unremoved neighbors.
        let mut removed = vec![false; g.num_vertices()];
        for &v in &order {
            let remaining = g
                .neighbors(v)
                .iter()
                .filter(|&&w| !removed[w as usize])
                .count();
            prop_assert!(remaining <= d, "vertex {v}: {remaining} > degeneracy {d}");
            removed[v as usize] = true;
        }
        // Degeneracy bounds: at least ceil(min over subgraphs avg/2)… use
        // the easy sanity bounds instead: ≤ max degree, ≥ m·?… check ≤ max.
        prop_assert!(d <= g.max_degree());
    }

    #[test]
    fn relabel_by_degeneracy_is_an_isomorphism(g in arb_graph(25)) {
        let (h, perm) = subgraph::degeneracy_relabel(&g);
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            prop_assert_eq!(
                h.edge_prob_raw(perm[u as usize], perm[v as usize]),
                Some(p)
            );
        }
    }

    #[test]
    fn components_agree_with_reachability(g in arb_graph(25)) {
        let c = Components::compute(&g);
        // Same component ⇔ BFS-reachable (checked by doubling the labels
        // through a second independent traversal over edges).
        let n = g.num_vertices();
        let mut reach = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n as u32 {
            if reach[start as usize] != usize::MAX { continue; }
            let id = next; next += 1;
            let mut stack = vec![start];
            reach[start as usize] = id;
            while let Some(v) = stack.pop() {
                for &w in g.neighbors(v) {
                    if reach[w as usize] == usize::MAX {
                        reach[w as usize] = id;
                        stack.push(w);
                    }
                }
            }
        }
        prop_assert_eq!(c.count(), next);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    c.connected(u, v),
                    reach[u as usize] == reach[v as usize]
                );
            }
        }
        // Sizes sum to n.
        prop_assert_eq!(c.sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn induced_subgraph_preserves_probabilities(g in arb_graph(20), seed in any::<u64>()) {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut keep: Vec<u32> = g.vertices().collect();
        keep.shuffle(&mut rng);
        keep.truncate(g.num_vertices() / 2 + 1);
        let (sub, map) = subgraph::induced_subgraph(&g, &keep).unwrap();
        prop_assert_eq!(sub.num_vertices(), keep.len());
        for (nu, nv, p) in sub.edges() {
            prop_assert_eq!(
                g.edge_prob_raw(map[nu as usize], map[nv as usize]),
                Some(p)
            );
        }
        // Every original edge between kept vertices survives.
        for (u, v, p) in g.edges() {
            let iu = keep.iter().position(|&x| x == u);
            let iv = keep.iter().position(|&x| x == v);
            if let (Some(iu), Some(iv)) = (iu, iv) {
                prop_assert_eq!(sub.edge_prob_raw(iu as u32, iv as u32), Some(p));
            }
        }
    }
}
