//! Error types for graph construction and queries.

use crate::prob::ProbError;
use std::fmt;

/// Identifier of a vertex. The paper labels vertices `1..n`; we use dense
/// zero-based `u32` ids (graphs with tens of thousands to millions of
/// vertices fit comfortably, and half-width ids keep the CSR arrays compact).
pub type VertexId = u32;

/// Errors arising while building or querying an uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge `{v, v}` was added; the model is restricted to simple graphs.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        vertex: VertexId,
    },
    /// The same undirected edge was added twice with conflicting
    /// probabilities and the builder was not configured to merge duplicates.
    DuplicateEdge {
        /// Lower endpoint.
        u: VertexId,
        /// Upper endpoint.
        v: VertexId,
    },
    /// An edge probability outside `(0, 1]`.
    InvalidProbability(ProbError),
    /// A vertex id at or above the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The declared number of vertices.
        n: usize,
    },
    /// The requested α threshold is outside `(0, 1]`.
    InvalidAlpha {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} (graphs are simple)")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(
                    f,
                    "edge {{{u}, {v}}} added more than once with conflicting probabilities"
                )
            }
            GraphError::InvalidProbability(e) => write!(f, "{e}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::InvalidAlpha { value } => {
                write!(f, "alpha {value} outside the half-open interval (0, 1]")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::InvalidProbability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for GraphError {
    fn from(e: ProbError) -> Self {
        GraphError::InvalidProbability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Prob;

    #[test]
    fn display_messages_mention_operands() {
        assert!(GraphError::SelfLoop { vertex: 7 }.to_string().contains('7'));
        assert!(GraphError::DuplicateEdge { u: 1, v: 2 }
            .to_string()
            .contains("{1, 2}"));
        assert!(GraphError::VertexOutOfRange { vertex: 9, n: 5 }
            .to_string()
            .contains("9"));
        assert!(GraphError::InvalidAlpha { value: 2.0 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn prob_error_converts_and_chains() {
        let pe = Prob::new(-1.0).unwrap_err();
        let ge: GraphError = pe.into();
        assert!(matches!(ge, GraphError::InvalidProbability(_)));
        use std::error::Error;
        assert!(ge.source().is_some());
    }
}
