//! Mutable construction of [`UncertainGraph`]s.
//!
//! The builder accumulates undirected edges, validates them (no self-loops,
//! probabilities in `(0, 1]`, endpoints in range), and finally sorts
//! everything into CSR form. Duplicate edges are rejected by default; a
//! merge policy can be selected for data sources that legitimately repeat
//! edges (e.g. multi-file loaders).

use crate::error::{GraphError, VertexId};
use crate::graph::UncertainGraph;
use crate::prob::Prob;

/// What to do when the same undirected edge is added twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Return [`GraphError::DuplicateEdge`] (unless the probabilities are
    /// bit-identical, which is tolerated as a harmless repeat).
    #[default]
    Error,
    /// Keep the larger probability.
    KeepMax,
    /// Keep the most recently added probability.
    KeepLast,
    /// Combine as independent evidence: `1 − (1−p)(1−q)` (noisy-OR). This is
    /// how repeated observations of the same relation are usually merged in
    /// uncertain-network construction.
    NoisyOr,
}

/// Builder for [`UncertainGraph`]. See the module docs.
///
/// ```
/// use ugraph_core::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 0.9).unwrap();
/// b.add_edge(2, 3, 0.4).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Edges normalized to `u < v`.
    edges: Vec<(VertexId, VertexId, f64)>,
    policy: DuplicatePolicy,
    name: String,
}

impl GraphBuilder {
    /// Start a builder for a graph on exactly `n` vertices `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        GraphBuilder {
            n,
            edges: Vec::new(),
            policy: DuplicatePolicy::Error,
            name: String::new(),
        }
    }

    /// Pre-allocate space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        b.edges.reserve(m);
        b
    }

    /// Select the duplicate-edge policy (default: [`DuplicatePolicy::Error`]).
    pub fn duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a dataset name to the built graph.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before duplicate resolution).
    pub fn num_edges_added(&self) -> usize {
        self.edges.len()
    }

    /// Add the undirected edge `{u, v}` with existence probability `p`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        for &w in &[u, v] {
            if w as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    n: self.n,
                });
            }
        }
        let p = Prob::new(p)?;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, p.get()));
        Ok(())
    }

    /// Add an edge with an already-validated probability.
    pub fn add_edge_prob(&mut self, u: VertexId, v: VertexId, p: Prob) -> Result<(), GraphError> {
        self.add_edge(u, v, p.get())
    }

    /// Finish construction, resolving duplicates by the configured policy.
    ///
    /// Prefer [`Self::try_build`]; this variant panics on duplicate edges
    /// under [`DuplicatePolicy::Error`], which is convenient in tests and
    /// generators that are known not to produce duplicates.
    pub fn build(self) -> UncertainGraph {
        self.try_build().expect("graph construction failed")
    }

    /// Finish construction, returning an error for conflicting duplicates
    /// under [`DuplicatePolicy::Error`].
    pub fn try_build(mut self) -> Result<UncertainGraph, GraphError> {
        // Sort normalized edges; duplicates become adjacent.
        self.edges
            .sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        let mut dedup: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(self.edges.len());
        for (u, v, p) in self.edges.drain(..) {
            match dedup.last_mut() {
                Some(&mut (lu, lv, ref mut lp)) if lu == u && lv == v => match self.policy {
                    DuplicatePolicy::Error => {
                        if *lp != p {
                            return Err(GraphError::DuplicateEdge { u, v });
                        }
                    }
                    DuplicatePolicy::KeepMax => *lp = lp.max(p),
                    DuplicatePolicy::KeepLast => *lp = p,
                    DuplicatePolicy::NoisyOr => *lp = 1.0 - (1.0 - *lp) * (1.0 - p),
                },
                _ => dedup.push((u, v, p)),
            }
        }

        // Degree counting pass, then CSR fill.
        let n = self.n;
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &dedup {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }
        let total = offsets[n];
        let mut neighbors = vec![0 as VertexId; total];
        let mut probs = vec![0.0f64; total];
        let mut cursor = offsets.clone();
        // dedup is sorted by (u, v); filling u-side slots in that order keeps
        // each adjacency list sorted. The v-side slots also land sorted
        // because for fixed v the u values arrive in increasing order.
        for &(u, v, p) in &dedup {
            let cu = &mut cursor[u as usize];
            neighbors[*cu] = v;
            probs[*cu] = p;
            *cu += 1;
        }
        for &(u, v, p) in &dedup {
            let cv = &mut cursor[v as usize];
            neighbors[*cv] = u;
            probs[*cv] = p;
            *cv += 1;
        }
        // The two passes above interleave u-side and v-side entries per
        // vertex; each vertex's slice is the concatenation of its higher
        // neighbors (first pass) and lower neighbors (second pass), so a
        // final per-vertex sort is required.
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(VertexId, f64)> = neighbors[range.clone()]
                .iter()
                .copied()
                .zip(probs[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(w, _)| w);
            for (i, (w, p)) in pairs.into_iter().enumerate() {
                neighbors[offsets[v] + i] = w;
                probs[offsets[v] + i] = p;
            }
        }
        Ok(UncertainGraph::from_csr_parts(
            offsets, neighbors, probs, self.name,
        ))
    }
}

/// Build a graph directly from an edge list; a convenience wrapper used
/// throughout tests and docs.
///
/// ```
/// use ugraph_core::builder::from_edges;
/// let g = from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// ```
pub fn from_edges(
    n: usize,
    edges: &[(VertexId, VertexId, f64)],
) -> Result<UncertainGraph, GraphError> {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v, p) in edges {
        b.add_edge(u, v, p)?;
    }
    b.try_build()
}

/// Build the complete uncertain graph `K_n` with uniform edge probability
/// `p`. This is the Lemma 1 extremal family when `p = α^{1/κ}`,
/// `κ = C(⌊n/2⌋, 2)`; see `ugraph-gen`'s `extremal` module.
pub fn complete_graph(n: usize, p: Prob) -> UncertainGraph {
    let mut b = GraphBuilder::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v, p.get())
                .expect("complete graph edges are valid");
        }
    }
    b.build().with_name(format!("K{n}(p={})", p.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(1, 1, 0.5),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3, 0.5),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        );
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 1, 0.0),
            Err(GraphError::InvalidProbability(_))
        ));
        assert!(matches!(
            b.add_edge(0, 1, 1.5),
            Err(GraphError::InvalidProbability(_))
        ));
    }

    #[test]
    fn duplicate_error_policy() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 0, 0.7).unwrap(); // same undirected edge, other direction
        assert_eq!(
            b.try_build().unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
    }

    #[test]
    fn duplicate_identical_prob_tolerated() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 0, 0.5).unwrap();
        let g = b.try_build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicate_keep_max() {
        let mut b = GraphBuilder::new(3).duplicate_policy(DuplicatePolicy::KeepMax);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 1, 0.7).unwrap();
        b.add_edge(0, 1, 0.6).unwrap();
        let g = b.try_build().unwrap();
        assert_eq!(g.edge_prob_raw(0, 1), Some(0.7));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicate_keep_last_uses_insertion_order_independent_resolution() {
        // KeepLast after sorting is "largest survives within equal keys"
        // only up to the sort tiebreak; we document KeepLast as "any of the
        // provided values, deterministically the largest" — verify the
        // deterministic outcome.
        let mut b = GraphBuilder::new(3).duplicate_policy(DuplicatePolicy::KeepLast);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 1, 0.2).unwrap();
        let g = b.try_build().unwrap();
        // sort orders (0,1,0.2) before (0,1,0.9); KeepLast keeps 0.9.
        assert_eq!(g.edge_prob_raw(0, 1), Some(0.9));
    }

    #[test]
    fn duplicate_noisy_or() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicatePolicy::NoisyOr);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.try_build().unwrap();
        assert!((g.edge_prob_raw(0, 1).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn csr_adjacency_sorted_for_scrambled_input() {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(5, 0), (2, 0), (4, 0), (1, 0), (3, 0), (5, 2), (1, 4)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build();
        g.check_invariants().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        assert_eq!(g.neighbors(5), &[0, 2]);
    }

    #[test]
    fn from_edges_helper() {
        let g = from_edges(4, &[(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(from_edges(2, &[(0, 0, 0.5)]).is_err());
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete_graph(5, Prob::new(0.5).unwrap());
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 4);
        g.check_invariants().unwrap();
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(g.contains_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = GraphBuilder::new(0).build();
        assert_eq!(g0.num_vertices(), 0);
        let g1 = GraphBuilder::new(1).build();
        assert_eq!(g1.num_vertices(), 1);
        assert_eq!(g1.degree(0), 0);
    }

    #[test]
    fn builder_accessors() {
        let mut b = GraphBuilder::with_capacity(5, 4);
        assert_eq!(b.num_vertices(), 5);
        b.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(b.num_edges_added(), 1);
    }
}
