//! Clique probabilities and the reference α-clique / α-maximality oracles.
//!
//! For a vertex set `C` that induces a clique in the deterministic skeleton
//! `(V, E)`, the *clique probability* is
//!
//! ```text
//! clq(C, G) = ∏_{e ∈ E_C} p(e)            (Observation 1)
//! ```
//!
//! the probability that a world sampled from `G` contains every edge among
//! `C`. `C` is an **α-clique** if `clq(C, G) ≥ α` (Definition 3) and an
//! **α-maximal clique** if additionally no strict superset `C ∪ {v}` is an
//! α-clique (Definition 4).
//!
//! The functions here are the *reference* implementations: straightforward,
//! obviously correct, and used as test oracles for the incremental
//! algorithms in the `mule` crate. `clique_probability` is `O(|C|²)` and
//! `is_alpha_maximal` is `O(n·|C|)` — exactly the costs the paper's
//! incremental bookkeeping exists to avoid.

use crate::error::VertexId;
use crate::graph::UncertainGraph;

/// By convention `clq(∅, G) = 1` and `clq({v}, G) = 1` (Section 4: a single
/// vertex is a clique with probability one).
///
/// Returns `None` when `C` is not a clique in the deterministic skeleton
/// (some pair has no possible edge at all), and `Some(product)` otherwise.
///
/// # Panics
/// Panics if `C` contains a repeated vertex; callers pass canonical sets.
pub fn clique_probability(g: &UncertainGraph, c: &[VertexId]) -> Option<f64> {
    let mut q = 1.0f64;
    for (i, &u) in c.iter().enumerate() {
        for &v in &c[i + 1..] {
            assert_ne!(u, v, "vertex {u} repeated in clique set");
            q *= g.edge_prob_raw(u, v)?;
        }
    }
    Some(q)
}

/// True if `C` induces a clique in the skeleton `(V, E)` (Definition 1),
/// ignoring probabilities.
pub fn is_clique(g: &UncertainGraph, c: &[VertexId]) -> bool {
    clique_probability(g, c).is_some()
}

/// True if `C` is an α-clique: a skeleton clique with
/// `clq(C, G) ≥ α` (Definition 3).
pub fn is_alpha_clique(g: &UncertainGraph, c: &[VertexId], alpha: f64) -> bool {
    matches!(clique_probability(g, c), Some(q) if q >= alpha)
}

/// Reference α-maximality oracle (Definition 4): `C` is an α-clique and no
/// vertex `v ∉ C` extends it to another α-clique.
///
/// `O(n · |C|)` after the initial `O(|C|²)` probability computation — the
/// cost the paper cites when motivating the `X` set (Section 4,
/// "the cost of checking maximality").
pub fn is_alpha_maximal(g: &UncertainGraph, c: &[VertexId], alpha: f64) -> bool {
    let Some(q) = clique_probability(g, c) else {
        return false;
    };
    if q < alpha {
        return false;
    }
    // Candidate extensions only come from neighbors of the smallest-degree
    // member (every extender is adjacent to all of C). The empty clique is
    // extendable by any vertex when n > 0.
    if c.is_empty() {
        return g.num_vertices() == 0;
    }
    let pivot = *c
        .iter()
        .min_by_key(|&&v| g.degree(v))
        .expect("non-empty clique");
    'cand: for &v in g.neighbors(pivot) {
        if c.contains(&v) {
            continue;
        }
        let mut q_ext = q;
        for &u in c {
            match g.edge_prob_raw(u, v) {
                Some(p) => q_ext *= p,
                None => continue 'cand,
            }
        }
        if q_ext >= alpha {
            return false; // v extends C to an α-clique
        }
    }
    true
}

/// Sort and verify a vertex set into canonical (strictly increasing) form.
///
/// Returns `None` if the set contains duplicates or out-of-range ids.
pub fn canonicalize(g: &UncertainGraph, c: &[VertexId]) -> Option<Vec<VertexId>> {
    let mut v = c.to_vec();
    v.sort_unstable();
    if v.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    if v.last().is_some_and(|&x| x as usize >= g.num_vertices()) {
        return None;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges};
    use crate::prob::Prob;

    /// Triangle {0,1,2} with probs 1/2, 1/2, 1/4 plus pendant 3-2 (p=1/2).
    fn fixture() -> UncertainGraph {
        from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.25), (2, 3, 0.5)]).unwrap()
    }

    #[test]
    fn empty_and_singleton_probability_is_one() {
        let g = fixture();
        assert_eq!(clique_probability(&g, &[]), Some(1.0));
        assert_eq!(clique_probability(&g, &[3]), Some(1.0));
    }

    #[test]
    fn pair_probability_is_edge_probability() {
        let g = fixture();
        assert_eq!(clique_probability(&g, &[0, 2]), Some(0.25));
        assert_eq!(clique_probability(&g, &[2, 0]), Some(0.25));
    }

    #[test]
    fn triangle_probability_is_product() {
        let g = fixture();
        assert_eq!(clique_probability(&g, &[0, 1, 2]), Some(0.5 * 0.5 * 0.25));
    }

    #[test]
    fn non_clique_returns_none() {
        let g = fixture();
        assert_eq!(clique_probability(&g, &[0, 3]), None);
        assert_eq!(clique_probability(&g, &[0, 1, 3]), None);
        assert!(!is_clique(&g, &[0, 3]));
        assert!(is_clique(&g, &[0, 1, 2]));
    }

    #[test]
    #[should_panic]
    fn repeated_vertex_panics() {
        let g = fixture();
        let _ = clique_probability(&g, &[1, 1]);
    }

    #[test]
    fn alpha_clique_thresholds() {
        let g = fixture();
        // clq({0,1,2}) = 1/16
        assert!(is_alpha_clique(&g, &[0, 1, 2], 0.0625));
        assert!(!is_alpha_clique(&g, &[0, 1, 2], 0.0626));
        assert!(is_alpha_clique(&g, &[0, 1], 0.5));
        assert!(!is_alpha_clique(&g, &[0, 3], 0.0001)); // not a skeleton clique
    }

    #[test]
    fn maximality_depends_on_alpha() {
        let g = fixture();
        // At α = 1/16 the full triangle is an α-clique, so {0,1} is not
        // maximal; the triangle itself is (vertex 3 attaches only to 2).
        assert!(!is_alpha_maximal(&g, &[0, 1], 0.0625));
        assert!(is_alpha_maximal(&g, &[0, 1, 2], 0.0625));
        // At α = 0.5 the triangle fails the threshold and each qualifying
        // edge becomes maximal.
        assert!(!is_alpha_maximal(&g, &[0, 1, 2], 0.5));
        assert!(is_alpha_maximal(&g, &[0, 1], 0.5));
        assert!(is_alpha_maximal(&g, &[1, 2], 0.5));
        assert!(is_alpha_maximal(&g, &[2, 3], 0.5));
        // {0,2} has probability 0.25 < 0.5: not even an α-clique.
        assert!(!is_alpha_maximal(&g, &[0, 2], 0.5));
    }

    #[test]
    fn singleton_maximality() {
        // Isolated vertex: maximal at any α. Connected vertex: not maximal
        // when its edge clears the threshold.
        let g = from_edges(3, &[(0, 1, 0.9)]).unwrap();
        assert!(is_alpha_maximal(&g, &[2], 0.5));
        assert!(!is_alpha_maximal(&g, &[0], 0.5));
        assert!(is_alpha_maximal(&g, &[0], 0.95));
    }

    #[test]
    fn empty_set_maximal_only_for_empty_graph() {
        let empty = crate::builder::GraphBuilder::new(0).build();
        assert!(is_alpha_maximal(&empty, &[], 0.5));
        let g = fixture();
        assert!(!is_alpha_maximal(&g, &[], 0.5));
    }

    #[test]
    fn complete_graph_maximal_prefix() {
        // K5 with p = 0.5: clq of k-subset is 0.5^C(k,2).
        let g = complete_graph(5, Prob::new(0.5).unwrap());
        let alpha = 0.5f64.powi(3); // admits cliques with C(k,2) ≤ 3, i.e. k ≤ 3
        assert!(is_alpha_clique(&g, &[0, 1, 2], alpha));
        assert!(!is_alpha_clique(&g, &[0, 1, 2, 3], alpha));
        assert!(is_alpha_maximal(&g, &[0, 1, 2], alpha));
        assert!(!is_alpha_maximal(&g, &[0, 1], alpha));
    }

    #[test]
    fn canonicalize_sorts_and_validates() {
        let g = fixture();
        assert_eq!(canonicalize(&g, &[2, 0, 1]), Some(vec![0, 1, 2]));
        assert_eq!(canonicalize(&g, &[2, 2]), None);
        assert_eq!(canonicalize(&g, &[9]), None);
        assert_eq!(canonicalize(&g, &[]), Some(vec![]));
    }

    #[test]
    fn observation_2_subset_probability_monotone() {
        let g = fixture();
        let big = clique_probability(&g, &[0, 1, 2]).unwrap();
        for sub in [&[0u32, 1][..], &[1, 2], &[0, 2], &[0], &[]] {
            assert!(clique_probability(&g, sub).unwrap() >= big);
        }
    }
}
