//! Possible-world semantics: sampling deterministic graphs from an
//! uncertain graph.
//!
//! An uncertain graph is a distribution over `2^m` deterministic subgraphs
//! (`D(G)` in Section 2); sampling draws each edge independently with its
//! probability. This module provides world sampling and a Monte-Carlo
//! estimator for clique probabilities, used to validate the closed-form
//! product of Observation 1 end-to-end.

use crate::error::VertexId;
use crate::graph::UncertainGraph;
use rand::Rng;

/// A deterministic graph sampled from an uncertain graph: the surviving
/// edge set, stored as sorted adjacency (no probabilities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl World {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of surviving undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbors of `v` in this world.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// True if edge `{u, v}` survived.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// True if `c` is a (deterministic) clique in this world.
    pub fn is_clique(&self, c: &[VertexId]) -> bool {
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                if !self.contains_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Sample one possible world: each edge kept independently with its
/// probability (the sampling procedure described in Section 2).
pub fn sample_world<R: Rng + ?Sized>(g: &UncertainGraph, rng: &mut R) -> World {
    let n = g.num_vertices();
    let mut kept: Vec<(VertexId, VertexId)> = Vec::new();
    for (u, v, p) in g.edges() {
        if rng.gen::<f64>() < p {
            kept.push((u, v));
        }
    }
    let mut degree = vec![0usize; n];
    for &(u, v) in &kept {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0);
    for v in 0..n {
        offsets.push(offsets[v] + degree[v]);
    }
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    let mut cursor = offsets.clone();
    for &(u, v) in &kept {
        neighbors[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    for v in 0..n {
        neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    World { offsets, neighbors }
}

/// Monte-Carlo estimate of `clq(C, G)`: the fraction of `samples` worlds in
/// which `C` is a clique. Only the edges among `C` are sampled, so the cost
/// is `O(samples · |C|²)` regardless of graph size.
///
/// Returns `0.0` if `C` is not even a skeleton clique (some pair has no
/// possible edge).
pub fn estimate_clique_probability<R: Rng + ?Sized>(
    g: &UncertainGraph,
    c: &[VertexId],
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    // Collect the pairwise edge probabilities once.
    let mut edge_probs = Vec::with_capacity(c.len() * c.len().saturating_sub(1) / 2);
    for (i, &u) in c.iter().enumerate() {
        for &v in &c[i + 1..] {
            match g.edge_prob_raw(u, v) {
                Some(p) => edge_probs.push(p),
                None => return 0.0,
            }
        }
    }
    let mut hits = 0usize;
    for _ in 0..samples {
        if edge_probs.iter().all(|&p| rng.gen::<f64>() < p) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::clique::clique_probability;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> UncertainGraph {
        from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.25), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn certain_edges_always_survive() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let w = sample_world(&g, &mut rng);
            assert!(w.contains_edge(2, 3), "p = 1 edge must always exist");
            assert!(!w.contains_edge(0, 3), "absent edge can never exist");
            assert!(w.num_edges() <= g.num_edges());
            assert_eq!(w.num_vertices(), 4);
        }
    }

    #[test]
    fn world_adjacency_is_symmetric_and_sorted() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(7);
        let w = sample_world(&g, &mut rng);
        for v in 0..4u32 {
            let nbrs = w.neighbors(v);
            assert!(nbrs.windows(2).all(|p| p[0] < p[1]));
            for &u in nbrs {
                assert!(w.contains_edge(u, v));
            }
        }
    }

    #[test]
    fn edge_survival_frequency_matches_probability() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if sample_world(&g, &mut rng).contains_edge(0, 2) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq} far from 0.25");
    }

    #[test]
    fn world_clique_check() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let w = sample_world(&g, &mut rng);
        assert!(w.is_clique(&[0, 1, 2]));
        assert!(w.is_clique(&[1]));
        assert!(w.is_clique(&[]));
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(99);
        let exact = clique_probability(&g, &[0, 1, 2]).unwrap(); // 1/16
        let est = estimate_clique_probability(&g, &[0, 1, 2], 100_000, &mut rng);
        assert!(
            (est - exact).abs() < 0.005,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn monte_carlo_non_clique_is_zero() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(estimate_clique_probability(&g, &[0, 3], 100, &mut rng), 0.0);
    }

    #[test]
    fn monte_carlo_empty_set_is_one() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(estimate_clique_probability(&g, &[], 100, &mut rng), 1.0);
    }

    #[test]
    #[should_panic]
    fn monte_carlo_zero_samples_panics() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = estimate_clique_probability(&g, &[0], 0, &mut rng);
    }
}
