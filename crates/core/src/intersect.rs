//! Sorted-set intersection primitives shared by the enumeration kernel
//! (`mule::kernel`) and the strategy-sweep benchmarks.
//!
//! MULE's candidate filter intersects a sorted candidate span `src`
//! against a sorted CSR adjacency row `Γ(u)`. Three strategies cover the
//! `|src| / deg(u)` spectrum:
//!
//! * **dense-row lookup** — one load per candidate into a dense
//!   probability row ([`crate::NeighborhoodIndex::dense_row`]); no
//!   search at all, available only for hub vertices;
//! * **galloping search** ([`gallop_search`]) from a moving left bound —
//!   `O(log gap)` per candidate, `O(1)` when successive hits are
//!   adjacent; wins when `src` is much sparser than the row;
//! * **linear two-pointer merge** — `O(|src| + deg(u))` total; wins when
//!   `|src|` is within a constant factor of `deg(u)`, where galloping
//!   degenerates into repeated short searches over the same territory.
//!
//! The crossover constants used by the kernel's adaptive dispatch are
//! chosen from the measured sweep in `ugraph-bench`'s `filter_kernel`
//! bench (`intersect/*` groups), not guessed.

use crate::error::VertexId;

/// Exponential search for `w` in the sorted slice `nbrs`, starting from
/// `start`: probe at offsets 1, 2, 4, … then binary-search the bracketed
/// window. `Ok(i)`/`Err(i)` follow [`slice::binary_search`] semantics
/// relative to the whole slice. O(log gap) instead of O(log (len−start)),
/// which is what makes sorted-merge intersections cheap when consecutive
/// hits are near each other.
#[inline]
pub fn gallop_search(nbrs: &[VertexId], start: usize, w: VertexId) -> Result<usize, usize> {
    let n = nbrs.len();
    let mut prev = start;
    let mut probe = start;
    let mut step = 1usize;
    while probe < n {
        match nbrs[probe].cmp(&w) {
            std::cmp::Ordering::Equal => return Ok(probe),
            std::cmp::Ordering::Less => {
                prev = probe + 1;
                probe += step;
                step <<= 1;
            }
            std::cmp::Ordering::Greater => {
                return match nbrs[prev..probe].binary_search(&w) {
                    Ok(off) => Ok(prev + off),
                    Err(off) => Err(prev + off),
                };
            }
        }
    }
    match nbrs[prev..n].binary_search(&w) {
        Ok(off) => Ok(prev + off),
        Err(off) => Err(prev + off),
    }
}

/// Modeled comparison cost of one [`gallop_search`] that advanced `gap`
/// positions past its left bound: the exponential phase probes
/// `⌈log₂(gap + 1)⌉` times and the bisection re-bisects a window of
/// roughly half the gap, for `≈ 2·⌈log₂(gap + 1)⌉` comparisons total.
/// This is the unit the enumeration's `gallop_probes` counter records,
/// computed from the search's returned position: pricing gallop work
/// post-hoc costs the search loop nothing — accumulating a counter
/// inside the loop measurably slowed the enumeration hot path — while
/// the model is deterministic and tracks the same O(log gap) quantity.
#[inline]
pub fn gallop_cost(gap: usize) -> u64 {
    2 * u64::from(usize::BITS - gap.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallop_search_matches_binary_search() {
        let nbrs: Vec<VertexId> = vec![1, 3, 4, 9, 17, 33, 64, 65, 66, 900];
        for start in 0..=nbrs.len() {
            for w in 0..=1000u32 {
                let expected = match nbrs[start..].binary_search(&w) {
                    Ok(off) => Ok(start + off),
                    Err(off) => Err(start + off),
                };
                assert_eq!(
                    gallop_search(&nbrs, start, w),
                    expected,
                    "start={start}, w={w}"
                );
            }
        }
    }

    #[test]
    fn gallop_search_empty_slice() {
        assert_eq!(gallop_search(&[], 0, 7), Err(0));
    }

    #[test]
    fn gallop_cost_is_logarithmic_and_monotone() {
        assert_eq!(gallop_cost(1), 2, "adjacent hit: one probe per phase");
        assert_eq!(gallop_cost(2), 4);
        assert!(gallop_cost(1000) <= 20);
        for g in 1..200usize {
            assert!(gallop_cost(g) <= gallop_cost(g + 1));
        }
    }
}
