//! A fixed-capacity bitset over `u64` blocks.
//!
//! Maximal-clique enumeration is dominated by neighborhood intersections.
//! For small and dense graphs MULE uses a dense adjacency index
//! ([`crate::adjacency::AdjacencyIndex`]) whose rows are these bitsets, so
//! membership probes are O(1) and intersections run a word at a time.
//!
//! The implementation is deliberately self-contained (no `fixedbitset`
//! dependency is available offline) and exposes exactly the operations the
//! enumeration kernels need: set/clear/test, word-wise intersection and
//! union, popcount, and an iterator over set bits.

use std::fmt;

const BITS: usize = 64;

/// A fixed-capacity set of `usize` keys drawn from `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of addressable bits (not the number of set bits).
    len: usize,
}

impl BitSet {
    /// Create an empty bitset able to hold keys in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Create a bitset with every key in `0..len` present.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for (i, b) in s.blocks.iter_mut().enumerate() {
            let lo = i * BITS;
            let hi = (lo + BITS).min(len);
            if hi - lo == BITS {
                *b = u64::MAX;
            } else {
                *b = (1u64 << (hi - lo)) - 1;
            }
        }
        s
    }

    /// Build from an iterator of keys; keys must be `< len`.
    pub fn from_iter_with_len(len: usize, keys: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// Number of addressable bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert a key. Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: usize) {
        assert!(key < self.len, "bit {key} out of range (len {})", self.len);
        self.blocks[key / BITS] |= 1u64 << (key % BITS);
    }

    /// Remove a key. Panics if `key >= capacity`.
    #[inline]
    pub fn remove(&mut self, key: usize) {
        assert!(key < self.len, "bit {key} out of range (len {})", self.len);
        self.blocks[key / BITS] &= !(1u64 << (key % BITS));
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.len {
            return false;
        }
        self.blocks[key / BITS] & (1u64 << (key % BITS)) != 0
    }

    /// Remove all keys.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of keys present (popcount).
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if no key is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics if the capacities differ — intersecting sets over different key
    /// universes is always a bug at the call site.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// In-place union: `self |= other`. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place difference: `self &= !other`. Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the intersection is non-empty (early-exits).
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// True if every key of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over set keys in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Smallest key present, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect keys into a bitset sized to the largest key + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let keys: Vec<usize> = iter.into_iter().collect();
        let len = keys.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_iter_with_len(len, keys)
    }
}

/// Iterator over set bits, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx * BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "len {len}");
            if len > 0 {
                assert!(s.contains(len - 1));
            }
            assert!(!s.contains(len));
        }
    }

    #[test]
    fn iter_yields_sorted_keys() {
        let keys = [3usize, 64, 65, 127, 128, 199];
        let s = BitSet::from_iter_with_len(200, keys.iter().copied());
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, keys);
        assert_eq!(s.first(), Some(3));
    }

    #[test]
    fn iter_empty() {
        let s = BitSet::new(100);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_union_difference() {
        let a = BitSet::from_iter_with_len(128, [1usize, 2, 3, 70]);
        let b = BitSet::from_iter_with_len(128, [2usize, 3, 4, 71]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(a.intersects(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 71]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a = BitSet::from_iter_with_len(128, [0usize, 1]);
        let b = BitSet::from_iter_with_len(128, [100usize]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 0);
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_iter_with_len(64, [1usize, 5]);
        let b = BitSet::from_iter_with_len(64, [1usize, 5, 9]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitSet::new(64).is_subset_of(&a));
    }

    #[test]
    #[should_panic]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(64);
        let b = BitSet::new(128);
        a.intersect_with(&b);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn from_iterator_sizes_to_max_key() {
        let s: BitSet = [4usize, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(4) && s.contains(9));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = BitSet::from_iter_with_len(8, [1usize, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
