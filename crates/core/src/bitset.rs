//! A fixed-capacity bitset over `u64` blocks.
//!
//! Maximal-clique enumeration is dominated by neighborhood intersections.
//! For small and dense graphs MULE uses the tiered neighborhood index
//! ([`crate::adjacency::NeighborhoodIndex`]) whose membership rows are
//! bit-rows in one flattened word array (plain `&[u64]` slices, not
//! `BitSet`s — one pointer chase per membership probe instead of two), so
//! probes are O(1) and row-vs-row set algebra runs a word at a time; hub
//! vertices additionally carry dense probability rows on top.
//!
//! The implementation is deliberately self-contained (no `fixedbitset`
//! dependency is available offline): [`BitSet`] for owned sets
//! (set/clear/test, word-wise intersection and union, popcount, set-bit
//! iteration), plus the word-level core as free functions —
//! [`and_count_words`], [`intersect_words_into`] and
//! [`OnesIter`]/[`AndOnesIter`] — shared by `BitSet` and by the index's
//! borrowed rows ([`crate::adjacency::Row`]), and benchmarked in
//! `ugraph-bench`'s `filter_kernel` micro-bench.

use std::fmt;

const BITS: usize = 64;

/// Popcount of `a & b`, truncated to the shorter slice.
#[inline]
pub fn and_count_words(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Word-wise `out[i] = a[i] & b[i]`, allocation-free.
///
/// # Panics
/// Panics unless all three slices have equal length — intersecting sets
/// over different key universes is always a bug at the call site.
#[inline]
pub fn intersect_words_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(
        a.len() == b.len() && b.len() == out.len(),
        "word-slice length mismatch"
    );
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x & y;
    }
}

/// Iterator over the set-bit positions of a word slice, in increasing
/// order (the masked-iteration primitive; also backs [`BitSet::iter`]).
pub struct OnesIter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl<'a> OnesIter<'a> {
    /// Iterate the ones of `blocks`.
    pub fn new(blocks: &'a [u64]) -> Self {
        OnesIter {
            blocks,
            block_idx: 0,
            current: blocks.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx * BITS + tz)
    }
}

/// Iterator over the set-bit positions of `a & b` without materializing
/// the intersection: words are combined on the fly.
pub struct AndOnesIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl<'a> AndOnesIter<'a> {
    /// Iterate the ones of `a & b` (truncated to the shorter slice).
    pub fn new(a: &'a [u64], b: &'a [u64]) -> Self {
        let current = match (a.first(), b.first()) {
            (Some(x), Some(y)) => x & y,
            _ => 0,
        };
        AndOnesIter {
            a,
            b,
            block_idx: 0,
            current,
        }
    }
}

impl Iterator for AndOnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.a.len().min(self.b.len()) {
                return None;
            }
            self.current = self.a[self.block_idx] & self.b[self.block_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block_idx * BITS + tz)
    }
}

/// A fixed-capacity set of `usize` keys drawn from `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of addressable bits (not the number of set bits).
    len: usize,
}

impl BitSet {
    /// Create an empty bitset able to hold keys in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Create a bitset with every key in `0..len` present.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for (i, b) in s.blocks.iter_mut().enumerate() {
            let lo = i * BITS;
            let hi = (lo + BITS).min(len);
            if hi - lo == BITS {
                *b = u64::MAX;
            } else {
                *b = (1u64 << (hi - lo)) - 1;
            }
        }
        s
    }

    /// Build from an iterator of keys; keys must be `< len`.
    pub fn from_iter_with_len(len: usize, keys: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// Number of addressable bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert a key. Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: usize) {
        assert!(key < self.len, "bit {key} out of range (len {})", self.len);
        self.blocks[key / BITS] |= 1u64 << (key % BITS);
    }

    /// Remove a key. Panics if `key >= capacity`.
    #[inline]
    pub fn remove(&mut self, key: usize) {
        assert!(key < self.len, "bit {key} out of range (len {})", self.len);
        self.blocks[key / BITS] &= !(1u64 << (key % BITS));
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.len {
            return false;
        }
        self.blocks[key / BITS] & (1u64 << (key % BITS)) != 0
    }

    /// Remove all keys.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of keys present (popcount).
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if no key is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics if the capacities differ — intersecting sets over different key
    /// universes is always a bug at the call site.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// In-place union: `self |= other`. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place difference: `self &= !other`. Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the intersection is non-empty (early-exits).
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// True if every key of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Intersection into a preallocated output: `out = self & other`,
    /// allocation-free (unlike `clone` + [`BitSet::intersect_with`]).
    /// Panics on any capacity mismatch.
    pub fn intersect_into(&self, other: &BitSet, out: &mut BitSet) {
        assert!(
            self.len == other.len && other.len == out.len,
            "bitset capacity mismatch"
        );
        intersect_words_into(&self.blocks, &other.blocks, &mut out.blocks);
    }

    /// Iterate over the keys of `self & other` in increasing order
    /// without materializing the intersection. Panics on capacity
    /// mismatch.
    pub fn iter_and<'a>(&'a self, other: &'a BitSet) -> AndOnesIter<'a> {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        AndOnesIter::new(&self.blocks, &other.blocks)
    }

    /// Iterate over set keys in increasing order.
    pub fn iter(&self) -> OnesIter<'_> {
        OnesIter::new(&self.blocks)
    }

    /// Smallest key present, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect keys into a bitset sized to the largest key + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let keys: Vec<usize> = iter.into_iter().collect();
        let len = keys.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_iter_with_len(len, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "len {len}");
            if len > 0 {
                assert!(s.contains(len - 1));
            }
            assert!(!s.contains(len));
        }
    }

    #[test]
    fn iter_yields_sorted_keys() {
        let keys = [3usize, 64, 65, 127, 128, 199];
        let s = BitSet::from_iter_with_len(200, keys.iter().copied());
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, keys);
        assert_eq!(s.first(), Some(3));
    }

    #[test]
    fn iter_empty() {
        let s = BitSet::new(100);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_union_difference() {
        let a = BitSet::from_iter_with_len(128, [1usize, 2, 3, 70]);
        let b = BitSet::from_iter_with_len(128, [2usize, 3, 4, 71]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(a.intersects(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 71]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a = BitSet::from_iter_with_len(128, [0usize, 1]);
        let b = BitSet::from_iter_with_len(128, [100usize]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 0);
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_iter_with_len(64, [1usize, 5]);
        let b = BitSet::from_iter_with_len(64, [1usize, 5, 9]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitSet::new(64).is_subset_of(&a));
    }

    #[test]
    #[should_panic]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(64);
        let b = BitSet::new(128);
        a.intersect_with(&b);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn from_iterator_sizes_to_max_key() {
        let s: BitSet = [4usize, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(4) && s.contains(9));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = BitSet::from_iter_with_len(8, [1usize, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    #[test]
    fn intersect_into_is_allocation_free_equivalent() {
        let a = BitSet::from_iter_with_len(130, [1usize, 64, 65, 129]);
        let b = BitSet::from_iter_with_len(130, [1usize, 65, 100]);
        let mut out = BitSet::full(130); // stale contents must be overwritten
        a.intersect_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1, 65]);
        let mut reference = a.clone();
        reference.intersect_with(&b);
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic]
    fn intersect_into_checks_capacity() {
        let a = BitSet::new(64);
        let b = BitSet::new(64);
        let mut out = BitSet::new(128);
        a.intersect_into(&b, &mut out);
    }

    #[test]
    fn iter_and_matches_materialized_intersection() {
        let a = BitSet::from_iter_with_len(200, [0usize, 3, 64, 127, 128, 199]);
        let b = BitSet::from_iter_with_len(200, [3usize, 64, 128, 198]);
        let lazy: Vec<usize> = a.iter_and(&b).collect();
        let mut eager = a.clone();
        eager.intersect_with(&b);
        assert_eq!(lazy, eager.iter().collect::<Vec<_>>());
        assert_eq!(lazy, vec![3, 64, 128]);
    }

    #[test]
    fn iter_and_empty_and_disjoint() {
        let a = BitSet::new(100);
        let b = BitSet::new(100);
        assert_eq!(a.iter_and(&b).count(), 0);
        let c = BitSet::from_iter_with_len(100, [1usize]);
        let d = BitSet::from_iter_with_len(100, [2usize]);
        assert_eq!(c.iter_and(&d).count(), 0);
    }

    #[test]
    fn word_level_primitives_agree_with_bitset_ops() {
        let a = [0b1011u64, u64::MAX, 0];
        let b = [0b1110u64, 1 << 63, 7];
        assert_eq!(and_count_words(&a, &b), 3); // {1, 3} and bit 127
        let mut out = [u64::MAX; 3];
        intersect_words_into(&a, &b, &mut out);
        assert_eq!(out, [0b1010, 1 << 63, 0]);
        let ones: Vec<usize> = OnesIter::new(&b).take(3).collect();
        assert_eq!(ones, vec![1, 2, 3]);
        let and_ones: Vec<usize> = AndOnesIter::new(&a, &b).collect();
        assert_eq!(and_ones, vec![1, 3, 127]);
    }

    #[test]
    fn and_count_words_truncates_to_shorter() {
        assert_eq!(and_count_words(&[u64::MAX], &[u64::MAX, u64::MAX]), 64);
        assert_eq!(AndOnesIter::new(&[u64::MAX], &[]).count(), 0);
    }
}
