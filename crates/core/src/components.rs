//! Connected components of the deterministic skeleton.
//!
//! Used by dataset diagnostics (`mule stats`), by tests, and as a cheap
//! upper-bound structure: an α-clique can never span two components, so
//! component sizes bound clique sizes for free.

use crate::error::VertexId;
use crate::graph::UncertainGraph;

/// Component labeling: `label[v]` is the component id of `v` (ids are
/// dense, `0..count`, in order of first discovery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    label: Vec<u32>,
    count: usize,
}

impl Components {
    /// Compute components with an iterative BFS (no recursion, no stack
    /// overflows on path-like graphs).
    pub fn compute(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let mut label = vec![u32::MAX; n];
        let mut count = 0usize;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n as VertexId {
            if label[start as usize] != u32::MAX {
                continue;
            }
            let id = count as u32;
            count += 1;
            label[start as usize] = id;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for &w in g.neighbors(v) {
                    if label[w as usize] == u32::MAX {
                        label[w as usize] = id;
                        queue.push_back(w);
                    }
                }
            }
        }
        Components { label, count }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component id of a vertex.
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.label[v as usize]
    }

    /// True if `u` and `v` are in the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Vertex lists of every component, indexed by component id; each
    /// list is sorted ascending (labels are assigned by a scan from
    /// vertex 0, and vertices are appended in id order here). This is
    /// the sharding primitive of the preprocessing pipeline: each list
    /// feeds [`crate::subgraph::induced_subgraph`] to produce a compact
    /// per-component instance whose old↔new id map is monotone.
    pub fn vertex_lists(&self) -> Vec<Vec<VertexId>> {
        let mut lists: Vec<Vec<VertexId>> = vec![Vec::new(); self.count];
        for (v, &l) in self.label.iter().enumerate() {
            lists[l as usize].push(v as VertexId);
        }
        lists
    }

    /// Vertices of the largest component, sorted ascending — handy for
    /// focusing an enumeration on the interesting part of a fragmented
    /// graph via [`crate::subgraph::induced_subgraph`].
    pub fn largest_component_vertices(&self) -> Vec<VertexId> {
        let sizes = self.sizes();
        // Ties break toward the earliest-discovered component so the
        // result is deterministic (max_by_key alone would keep the last).
        let Some((best, _)) = sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        else {
            return vec![];
        };
        (0..self.label.len() as VertexId)
            .filter(|&v| self.label[v as usize] == best as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, GraphBuilder};

    #[test]
    fn two_triangles_and_an_isolate() {
        let g = from_edges(
            7,
            &[
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 2, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (3, 5, 0.5),
            ],
        )
        .unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert!(c.connected(0, 2));
        assert!(c.connected(3, 5));
        assert!(!c.connected(0, 3));
        assert!(!c.connected(6, 0));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.largest_component_vertices(), vec![0, 1, 2]);
        assert_eq!(
            c.vertex_lists(),
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let c = Components::compute(&GraphBuilder::new(0).build());
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), 0);
        assert!(c.largest_component_vertices().is_empty());
        let c = Components::compute(&GraphBuilder::new(4).build());
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn long_path_is_one_component() {
        let edges: Vec<(u32, u32, f64)> = (0..999).map(|i| (i, i + 1, 0.5)).collect();
        let g = from_edges(1000, &edges).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 1000);
    }

    #[test]
    fn labels_are_dense_discovery_ordered() {
        let g = from_edges(4, &[(2, 3, 0.5)]).unwrap();
        let c = Components::compute(&g);
        // Discovery order: {0}, {1}, {2,3}.
        assert_eq!(c.component_of(0), 0);
        assert_eq!(c.component_of(1), 1);
        assert_eq!(c.component_of(2), 2);
        assert_eq!(c.component_of(3), 2);
    }
}
