//! # ugraph-core — the uncertain-graph substrate
//!
//! Data structures and semantics for **uncertain graphs**: undirected simple
//! graphs where each edge `e` exists independently with probability
//! `p(e) ∈ (0, 1]`, as defined in *Mukherjee, Xu, Tirthapura, "Mining
//! Maximal Cliques from an Uncertain Graph"* (ICDE 2015), Section 2.
//!
//! This crate contains everything below the enumeration algorithms:
//!
//! * [`UncertainGraph`] — immutable CSR storage with per-edge probabilities,
//!   built through [`GraphBuilder`];
//! * [`BitSet`] and [`NeighborhoodIndex`] — the tiered neighborhood
//!   machinery (bitset membership rows everywhere, dense probability
//!   rows for hubs) behind the fast intersection paths, with the shared
//!   search primitives in [`intersect`];
//! * [`clique`] — clique probabilities (Observation 1) and the reference
//!   α-clique / α-maximality oracles used as test oracles;
//! * [`sample`] — possible-world semantics and Monte-Carlo validation;
//! * [`subgraph`] — α-edge pruning (Observation 3), induced subgraphs,
//!   degeneracy ordering / relabeling;
//! * [`stats`] — Table-1 style summary statistics.
//!
//! The enumeration algorithms themselves (MULE, LARGE–MULE, DFS–NOIP, …)
//! live in the `mule` crate; generators in `ugraph-gen`; serialization in
//! `ugraph-io`.
//!
//! ## Example
//!
//! ```
//! use ugraph_core::{GraphBuilder, clique};
//!
//! // A triangle where one edge is shaky.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 0.9).unwrap();
//! b.add_edge(1, 2, 0.9).unwrap();
//! b.add_edge(0, 2, 0.3).unwrap();
//! let g = b.build();
//!
//! // clq({0,1,2}) = 0.9 · 0.9 · 0.3 = 0.243
//! let q = clique::clique_probability(&g, &[0, 1, 2]).unwrap();
//! assert!((q - 0.243).abs() < 1e-12);
//!
//! // The triangle is 0.2-maximal but not 0.25-maximal…
//! assert!(clique::is_alpha_maximal(&g, &[0, 1, 2], 0.2));
//! assert!(!clique::is_alpha_clique(&g, &[0, 1, 2], 0.25));
//! // …at 0.25 the heavy edge {0,1} is maximal instead.
//! assert!(clique::is_alpha_maximal(&g, &[0, 1], 0.25));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod bitset;
pub mod builder;
pub mod clique;
pub mod components;
pub mod error;
pub mod graph;
pub mod intersect;
pub mod prob;
pub mod sample;
pub mod stats;
pub mod subgraph;

pub use adjacency::NeighborhoodIndex;
pub use bitset::BitSet;
pub use builder::{DuplicatePolicy, GraphBuilder};
pub use components::Components;
pub use error::{GraphError, VertexId};
pub use graph::UncertainGraph;
pub use prob::{LogProb, Prob, ProbError};
pub use sample::World;
pub use stats::GraphStats;
