//! Graph transformations: α-pruning, induced subgraphs, and vertex
//! relabeling.
//!
//! Observation 3 of the paper: every edge of an α-clique has probability at
//! least α, so edges with `p(e) < α` can be deleted up front without losing
//! any α-maximal clique. MULE assumes this pruning has been applied
//! (Section 4, first paragraph); [`prune_below_alpha`] implements it.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, VertexId};
use crate::graph::UncertainGraph;

/// Remove every edge with probability `< alpha` (Observation 3). The vertex
/// set is unchanged, so clique vertex ids remain valid.
///
/// Runs directly CSR-to-CSR in `O(n + m)`: filtering a sorted adjacency
/// keeps it sorted, and dropping an arc drops its mirror (same
/// probability test), so no re-sort or builder validation pass is
/// needed. This sits at the head of every enumeration (the pipeline
/// α-prunes each query), so the constant matters.
pub fn prune_below_alpha(g: &UncertainGraph, alpha: f64) -> Result<UncertainGraph, GraphError> {
    let alpha = UncertainGraph::validate_alpha(alpha)?.get();
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut neighbors = Vec::with_capacity(2 * g.num_edges());
    let mut probs = Vec::with_capacity(2 * g.num_edges());
    for v in 0..n as VertexId {
        for (w, p) in g.neighbors_with_probs(v) {
            if p >= alpha {
                neighbors.push(w);
                probs.push(p);
            }
        }
        offsets.push(neighbors.len());
    }
    Ok(
        UncertainGraph::from_csr_parts(offsets, neighbors, probs, String::new())
            .with_name(g.name().to_string()),
    )
}

/// Drop every edge with an endpoint outside the `keep` mask, preserving
/// the vertex id space (masked-out vertices simply become isolated).
/// Runs CSR-to-CSR in `O(n + m)` like [`prune_below_alpha`]: filtering a
/// sorted adjacency keeps it sorted, and both mirror arcs of an edge see
/// the same mask test. This is the vertex-filter stage of the
/// preprocessing pipeline (expected-degree core filtering), where ids
/// must stay stable for the later component decomposition.
pub fn restrict_to_vertices(g: &UncertainGraph, keep: &[bool]) -> UncertainGraph {
    assert_eq!(keep.len(), g.num_vertices(), "mask size mismatch");
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut neighbors = Vec::with_capacity(2 * g.num_edges());
    let mut probs = Vec::with_capacity(2 * g.num_edges());
    for v in 0..n as VertexId {
        if keep[v as usize] {
            for (w, p) in g.neighbors_with_probs(v) {
                if keep[w as usize] {
                    neighbors.push(w);
                    probs.push(p);
                }
            }
        }
        offsets.push(neighbors.len());
    }
    UncertainGraph::from_csr_parts(offsets, neighbors, probs, String::new())
        .with_name(g.name().to_string())
}

/// The subgraph induced by `keep`, with vertices relabeled to `0..keep.len()`
/// in the order given. Returns the subgraph and the mapping from new id to
/// original id.
///
/// `keep` must contain no duplicates and only in-range vertices.
///
/// When `keep` is strictly ascending (a *monotone* map — the shape the
/// component-sharding pipeline produces), the subgraph is assembled
/// CSR-to-CSR in `O(Σ deg(keep))` with no sorting: the source adjacency
/// is sorted and monotone relabeling preserves order. Arbitrary orders
/// fall back to the builder path.
pub fn induced_subgraph(
    g: &UncertainGraph,
    keep: &[VertexId],
) -> Result<(UncertainGraph, Vec<VertexId>), GraphError> {
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        if old as usize >= g.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: old,
                n: g.num_vertices(),
            });
        }
        assert_eq!(
            new_id[old as usize],
            u32::MAX,
            "duplicate vertex {old} in keep list"
        );
        new_id[old as usize] = new as u32;
    }
    if keep.windows(2).all(|w| w[0] < w[1]) {
        let mut offsets = Vec::with_capacity(keep.len() + 1);
        offsets.push(0usize);
        // Upper bound: every arc of a kept vertex survives (exact when
        // `keep` is a connected component).
        let arcs: usize = keep.iter().map(|&v| g.degree(v)).sum();
        let mut neighbors = Vec::with_capacity(arcs);
        let mut probs = Vec::with_capacity(arcs);
        for &old_u in keep {
            for (old_v, p) in g.neighbors_with_probs(old_u) {
                let new_v = new_id[old_v as usize];
                if new_v != u32::MAX {
                    neighbors.push(new_v);
                    probs.push(p);
                }
            }
            offsets.push(neighbors.len());
        }
        let sub = UncertainGraph::from_csr_parts(offsets, neighbors, probs, String::new());
        return Ok((sub, keep.to_vec()));
    }
    let mut b = GraphBuilder::new(keep.len());
    for (new_u, &old_u) in keep.iter().enumerate() {
        for (old_v, p) in g.neighbors_with_probs(old_u) {
            let new_v = new_id[old_v as usize];
            if new_v != u32::MAX && (new_u as u32) < new_v {
                b.add_edge(new_u as u32, new_v, p)?;
            }
        }
    }
    Ok((b.try_build()?, keep.to_vec()))
}

/// Relabel all vertices by the permutation `perm`, where `perm[old] = new`.
/// Enumeration algorithms explore vertices in id order, so relabeling by a
/// degeneracy order (see [`degeneracy_order`]) changes the search-tree shape
/// without changing the output set (modulo the relabeling).
pub fn relabel(g: &UncertainGraph, perm: &[VertexId]) -> Result<UncertainGraph, GraphError> {
    assert_eq!(perm.len(), g.num_vertices(), "permutation size mismatch");
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                !std::mem::replace(&mut seen[p as usize], true),
                "perm not a bijection"
            );
        }
    }
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v, p) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize], p)?;
    }
    Ok(b.try_build()?.with_name(g.name().to_string()))
}

/// Compute a degeneracy ordering: repeatedly remove a minimum-degree vertex.
/// Returns `(order, degeneracy)` where `order[i]` is the i-th removed vertex
/// and `degeneracy` is the largest degree seen at removal time.
///
/// The classic bucket implementation runs in `O(n + m)`.
pub fn degeneracy_order(g: &UncertainGraph) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (vec![], 0);
    }
    let mut degree: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap();
    // Buckets of vertices by current degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    while order.len() < n {
        // Find the lowest non-empty bucket; degrees only decrease by one per
        // removal so `cur` backs up at most one step per neighbor update.
        while cur < buckets.len() && buckets[cur].is_empty() {
            cur += 1;
        }
        let v = loop {
            let Some(v) = buckets[cur].pop() else {
                cur += 1;
                continue;
            };
            if !removed[v as usize] && degree[v as usize] == cur {
                break v;
            }
            // Stale entry: vertex moved buckets or already removed.
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        order.push(v);
        for &w in g.neighbors(v) {
            let wi = w as usize;
            if !removed[wi] {
                degree[wi] -= 1;
                buckets[degree[wi]].push(w);
                cur = cur.min(degree[wi]);
            }
        }
    }
    (order, degeneracy)
}

/// Convenience: relabel a graph so that a degeneracy order becomes the id
/// order (vertex removed first gets id 0). Returns the relabeled graph and
/// the permutation `perm[old] = new`.
pub fn degeneracy_relabel(g: &UncertainGraph) -> (UncertainGraph, Vec<VertexId>) {
    let (order, _) = degeneracy_order(g);
    let mut perm = vec![0 as VertexId; g.num_vertices()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    let h = relabel(g, &perm).expect("relabeling a valid graph cannot fail");
    (h, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges};
    use crate::prob::Prob;

    fn fixture() -> UncertainGraph {
        from_edges(
            5,
            &[
                (0, 1, 0.9),
                (1, 2, 0.4),
                (0, 2, 0.6),
                (2, 3, 0.2),
                (3, 4, 0.95),
            ],
        )
        .unwrap()
    }

    #[test]
    fn prune_drops_only_light_edges() {
        let g = fixture();
        let p = prune_below_alpha(&g, 0.5).unwrap();
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.num_edges(), 3);
        assert!(p.contains_edge(0, 1) && p.contains_edge(0, 2) && p.contains_edge(3, 4));
        assert!(!p.contains_edge(1, 2) && !p.contains_edge(2, 3));
        p.check_invariants().unwrap();
    }

    #[test]
    fn prune_alpha_boundary_is_inclusive() {
        let g = from_edges(2, &[(0, 1, 0.5)]).unwrap();
        assert_eq!(prune_below_alpha(&g, 0.5).unwrap().num_edges(), 1);
        assert_eq!(prune_below_alpha(&g, 0.5000001).unwrap().num_edges(), 0);
    }

    #[test]
    fn prune_rejects_bad_alpha() {
        let g = fixture();
        assert!(prune_below_alpha(&g, 0.0).is_err());
        assert!(prune_below_alpha(&g, 1.5).is_err());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = fixture();
        let (s, map) = induced_subgraph(&g, &[2, 0, 1]).unwrap();
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.num_edges(), 3); // the triangle 0-1-2
        assert_eq!(map, vec![2, 0, 1]);
        // new 0 = old 2, new 1 = old 0: edge prob must be old (0,2) = 0.6
        assert_eq!(s.edge_prob_raw(0, 1), Some(0.6));
        s.check_invariants().unwrap();
    }

    #[test]
    fn restrict_to_vertices_isolates_masked_out() {
        let g = fixture();
        let r = restrict_to_vertices(&g, &[true, true, true, false, false]);
        r.check_invariants().unwrap();
        assert_eq!(r.num_vertices(), 5, "id space preserved");
        assert_eq!(r.num_edges(), 3, "triangle survives, 2-3 and 3-4 go");
        assert!(r.contains_edge(0, 1) && r.contains_edge(0, 2) && r.contains_edge(1, 2));
        assert_eq!(r.degree(3), 0);
        assert_eq!(r.degree(4), 0);
        assert_eq!(r.name(), g.name());
    }

    #[test]
    #[should_panic]
    fn restrict_to_vertices_rejects_wrong_mask_size() {
        let _ = restrict_to_vertices(&fixture(), &[true, false]);
    }

    #[test]
    fn induced_subgraph_monotone_fast_path_matches_builder() {
        let g = fixture();
        // Ascending keep takes the CSR-to-CSR path; the same set in a
        // scrambled order takes the builder path. Same structure modulo
        // the relabeling.
        let (fast, map) = induced_subgraph(&g, &[0, 1, 2, 4]).unwrap();
        fast.check_invariants().unwrap();
        assert_eq!(map, vec![0, 1, 2, 4]);
        assert_eq!(fast.num_vertices(), 4);
        assert_eq!(fast.num_edges(), 3); // triangle; the (3,4) edge loses 3
        assert_eq!(fast.edge_prob_raw(0, 1), Some(0.9));
        assert_eq!(fast.edge_prob_raw(1, 2), Some(0.4));
        assert_eq!(fast.edge_prob_raw(0, 2), Some(0.6));
        assert!(!fast.contains_edge(0, 3) && !fast.contains_edge(2, 3));

        let (scrambled, _) = induced_subgraph(&g, &[4, 2, 1, 0]).unwrap();
        assert_eq!(scrambled.num_edges(), fast.num_edges());
    }

    #[test]
    fn induced_subgraph_out_of_range_errors() {
        let g = fixture();
        assert!(induced_subgraph(&g, &[0, 99]).is_err());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = fixture();
        // Reverse permutation.
        let n = g.num_vertices() as u32;
        let perm: Vec<u32> = (0..n).map(|v| n - 1 - v).collect();
        let h = relabel(&g, &perm).unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            assert_eq!(h.edge_prob_raw(perm[u as usize], perm[v as usize]), Some(p));
        }
        h.check_invariants().unwrap();
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 5);
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = from_edges(5, &[(0, 1, 0.5), (1, 2, 0.5), (1, 3, 0.5), (3, 4, 0.5)]).unwrap();
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degeneracy_empty_graph() {
        let g = crate::builder::GraphBuilder::new(0).build();
        let (order, d) = degeneracy_order(&g);
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    fn degeneracy_relabel_round_trip() {
        let g = fixture();
        let (h, perm) = degeneracy_relabel(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            assert_eq!(h.edge_prob_raw(perm[u as usize], perm[v as usize]), Some(p));
        }
    }
}
