//! Dense adjacency index: one [`BitSet`] row per vertex.
//!
//! MULE's `GenerateI`/`GenerateX` steps intersect candidate sets with the
//! neighborhood `Γ(m)` of the newly added vertex (Algorithm 3, line 4). Two
//! strategies are available:
//!
//! * binary search of each candidate in the CSR adjacency — `O(k log deg)`
//!   for `k` candidates, no extra memory;
//! * probing a dense bitset row — `O(k)` with `O(n²/64)` bits of memory.
//!
//! The dense index pays off on small or dense graphs (all the paper's
//! Figure 1 inputs fit easily); [`AdjacencyIndex::should_build`] encodes the
//! heuristic, and `mule`'s enumeration picks automatically. The ablation
//! bench (`ugraph-bench`, `benches/ablation.rs`) measures the difference.

use crate::bitset::BitSet;
use crate::error::VertexId;
use crate::graph::UncertainGraph;

/// Dense neighborhood rows for O(1) membership probes.
pub struct AdjacencyIndex {
    rows: Vec<BitSet>,
}

impl AdjacencyIndex {
    /// Build the index from a graph. Memory is `n² / 8` bytes; callers on
    /// large graphs should consult [`Self::should_build`] first.
    pub fn build(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let rows = g
            .vertices()
            .map(|v| BitSet::from_iter_with_len(n, g.neighbors(v).iter().map(|&w| w as usize)))
            .collect();
        AdjacencyIndex { rows }
    }

    /// Heuristic: build the dense index when it costs at most
    /// `max_bytes` (default used by `mule` is 64 MiB).
    pub fn should_build(g: &UncertainGraph, max_bytes: usize) -> bool {
        let n = g.num_vertices();
        // n rows of ceil(n/64) u64 words.
        n.saturating_mul(n.div_ceil(64)).saturating_mul(8) <= max_bytes
    }

    /// O(1) edge membership probe.
    #[inline]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.rows[u as usize].contains(v as usize)
    }

    /// The neighborhood row of `v` as a bitset.
    #[inline]
    pub fn row(&self, v: VertexId) -> &BitSet {
        &self.rows[v as usize]
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// `|Γ(u) ∩ Γ(v)|` — the shared-neighborhood size used by the
    /// Modani–Dey filter in `mule::pruning`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        self.rows[u as usize].intersection_count(&self.rows[v as usize])
    }
}

/// Count common neighbors with a sorted-merge over CSR adjacency, for graphs
/// where the dense index is too large. Equivalent to
/// [`AdjacencyIndex::common_neighbors`].
pub fn common_neighbors_merge(g: &UncertainGraph, u: VertexId, v: VertexId) -> usize {
    let (mut a, mut b) = (
        g.neighbors(u).iter().peekable(),
        g.neighbors(v).iter().peekable(),
    );
    let mut count = 0;
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                a.next();
                b.next();
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges};
    use crate::prob::Prob;

    fn path4() -> UncertainGraph {
        from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap()
    }

    #[test]
    fn index_matches_graph_edges() {
        let g = path4();
        let idx = AdjacencyIndex::build(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(idx.contains_edge(u, v), g.contains_edge(u, v), "({u},{v})");
            }
        }
        assert_eq!(idx.num_vertices(), 4);
    }

    #[test]
    fn rows_expose_neighborhoods() {
        let g = path4();
        let idx = AdjacencyIndex::build(&g);
        assert_eq!(idx.row(1).iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn common_neighbors_dense_and_merge_agree() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let idx = AdjacencyIndex::build(&g);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert_eq!(idx.common_neighbors(u, v), 4);
                    assert_eq!(common_neighbors_merge(&g, u, v), 4);
                }
            }
        }
        let p = path4();
        let pidx = AdjacencyIndex::build(&p);
        assert_eq!(pidx.common_neighbors(0, 2), 1); // via vertex 1
        assert_eq!(common_neighbors_merge(&p, 0, 2), 1);
        assert_eq!(pidx.common_neighbors(0, 3), 0);
        assert_eq!(common_neighbors_merge(&p, 0, 3), 0);
    }

    #[test]
    fn should_build_thresholds() {
        let g = path4();
        assert!(AdjacencyIndex::should_build(&g, 1 << 20));
        assert!(!AdjacencyIndex::should_build(&g, 0));
    }
}
