//! Dense adjacency index: one bit-row per vertex, flattened into a
//! single contiguous word array.
//!
//! MULE's `GenerateI`/`GenerateX` steps intersect candidate sets with the
//! neighborhood `Γ(m)` of the newly added vertex (Algorithm 3, line 4). Two
//! strategies are available:
//!
//! * binary search of each candidate in the CSR adjacency — `O(k log deg)`
//!   for `k` candidates, no extra memory;
//! * probing a dense bit-row — `O(k)` with `O(n²/64)` bits of memory.
//!
//! The rows are **not** individual [`crate::BitSet`]s: all `n` rows share
//! one `Vec<u64>` with a fixed word stride, so a membership probe is a
//! single dependent load (`words[base + w/64]`) instead of two
//! (`rows[u] → blocks → word`), the whole index is one allocation, and
//! rows sit contiguously in cache. The enumeration kernel's dense path
//! runs on [`Row::contains`] probes; the row-vs-row set algebra
//! ([`AdjacencyIndex::common_neighbors`], [`AdjacencyIndex::iter_common`]) is built on
//! [`crate::bitset`]'s word-level free functions
//! ([`bitset::and_count_words`], [`bitset::AndOnesIter`]).
//!
//! The dense index pays off on small or dense graphs (all the paper's
//! Figure 1 inputs fit easily); [`AdjacencyIndex::should_build`] encodes the
//! heuristic, and `mule`'s enumeration picks automatically. The ablation
//! bench (`ugraph-bench`, `benches/ablation.rs`) measures the difference.

use crate::bitset::{self, AndOnesIter, OnesIter};
use crate::error::VertexId;
use crate::graph::UncertainGraph;

/// Dense neighborhood rows for O(1) membership probes.
pub struct AdjacencyIndex {
    /// `n` rows of `stride` words each, row `v` at `v * stride`.
    words: Vec<u64>,
    /// Words per row: `ceil(n / 64)`.
    stride: usize,
    /// Number of vertices covered.
    n: usize,
}

/// One neighborhood row of an [`AdjacencyIndex`]: a borrowed word slice
/// with O(1) membership probes.
#[derive(Clone, Copy)]
pub struct Row<'a> {
    words: &'a [u64],
}

impl<'a> Row<'a> {
    /// O(1) membership probe. Keys at or beyond the index capacity are
    /// absent by definition.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        match self.words.get(key / 64) {
            Some(w) => w & (1u64 << (key % 64)) != 0,
            None => false,
        }
    }

    /// Iterate the row's members (neighbor ids) in increasing order.
    pub fn iter(&self) -> OnesIter<'a> {
        OnesIter::new(self.words)
    }

    /// The raw words (for word-wise set algebra against other rows).
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }
}

impl AdjacencyIndex {
    /// Build the index from a graph. Memory is `n² / 8` bytes in one
    /// allocation; callers on large graphs should consult
    /// [`Self::should_build`] first.
    pub fn build(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let stride = n.div_ceil(64);
        let mut words = vec![0u64; n * stride];
        for v in g.vertices() {
            let base = v as usize * stride;
            for &w in g.neighbors(v) {
                words[base + w as usize / 64] |= 1u64 << (w as usize % 64);
            }
        }
        AdjacencyIndex { words, stride, n }
    }

    /// Heuristic: build the dense index when it costs at most
    /// `max_bytes` (default used by `mule` is 64 MiB).
    pub fn should_build(g: &UncertainGraph, max_bytes: usize) -> bool {
        let n = g.num_vertices();
        // n rows of ceil(n/64) u64 words.
        n.saturating_mul(n.div_ceil(64)).saturating_mul(8) <= max_bytes
    }

    /// O(1) edge membership probe.
    #[inline]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.row(u).contains(v as usize)
    }

    /// The neighborhood row of `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> Row<'_> {
        let base = v as usize * self.stride;
        Row {
            words: &self.words[base..base + self.stride],
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// `|Γ(u) ∩ Γ(v)|` — the shared-neighborhood size used by the
    /// Modani–Dey filter in `mule::pruning`. Word-wise popcount, no
    /// materialization.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        bitset::and_count_words(self.row(u).words(), self.row(v).words())
    }

    /// Iterate `Γ(u) ∩ Γ(v)` in increasing order without materializing it
    /// (masked iteration over the two word rows).
    pub fn iter_common(&self, u: VertexId, v: VertexId) -> AndOnesIter<'_> {
        AndOnesIter::new(self.row(u).words(), self.row(v).words())
    }
}

/// Count common neighbors with a sorted-merge over CSR adjacency, for graphs
/// where the dense index is too large. Equivalent to
/// [`AdjacencyIndex::common_neighbors`].
pub fn common_neighbors_merge(g: &UncertainGraph, u: VertexId, v: VertexId) -> usize {
    let (mut a, mut b) = (
        g.neighbors(u).iter().peekable(),
        g.neighbors(v).iter().peekable(),
    );
    let mut count = 0;
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                a.next();
                b.next();
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges};
    use crate::prob::Prob;

    fn path4() -> UncertainGraph {
        from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap()
    }

    #[test]
    fn index_matches_graph_edges() {
        let g = path4();
        let idx = AdjacencyIndex::build(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(idx.contains_edge(u, v), g.contains_edge(u, v), "({u},{v})");
            }
        }
        assert_eq!(idx.num_vertices(), 4);
    }

    #[test]
    fn rows_expose_neighborhoods() {
        let g = path4();
        let idx = AdjacencyIndex::build(&g);
        assert_eq!(idx.row(1).iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(idx.row(1).contains(0));
        assert!(!idx.row(1).contains(3));
        // Out-of-range probes are absent, not a panic.
        assert!(!idx.row(1).contains(64));
    }

    #[test]
    fn rows_are_wide_enough_past_one_word() {
        // 70 vertices forces a 2-word stride; check both words of a row.
        let g = from_edges(70, &[(0, 1, 0.5), (0, 69, 0.5)]).unwrap();
        let idx = AdjacencyIndex::build(&g);
        assert_eq!(idx.row(0).iter().collect::<Vec<_>>(), vec![1, 69]);
        assert!(idx.contains_edge(69, 0));
        assert_eq!(idx.common_neighbors(1, 69), 1); // via vertex 0
        assert_eq!(idx.iter_common(1, 69).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn common_neighbors_dense_and_merge_agree() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let idx = AdjacencyIndex::build(&g);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert_eq!(idx.common_neighbors(u, v), 4);
                    assert_eq!(common_neighbors_merge(&g, u, v), 4);
                }
            }
        }
        let p = path4();
        let pidx = AdjacencyIndex::build(&p);
        assert_eq!(pidx.common_neighbors(0, 2), 1); // via vertex 1
        assert_eq!(common_neighbors_merge(&p, 0, 2), 1);
        assert_eq!(pidx.common_neighbors(0, 3), 0);
        assert_eq!(common_neighbors_merge(&p, 0, 3), 0);
    }

    #[test]
    fn iter_common_matches_count() {
        let g = complete_graph(9, Prob::new(0.5).unwrap());
        let idx = AdjacencyIndex::build(&g);
        for u in 0..9 {
            for v in 0..9 {
                if u != v {
                    assert_eq!(
                        idx.iter_common(u, v).count(),
                        idx.common_neighbors(u, v),
                        "({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn should_build_thresholds() {
        let g = path4();
        assert!(AdjacencyIndex::should_build(&g, 1 << 20));
        assert!(!AdjacencyIndex::should_build(&g, 0));
    }
}
