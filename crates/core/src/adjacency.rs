//! Tiered neighborhood index: flat bitset-word membership rows for every
//! vertex, plus dense `f64` **probability rows** for hub vertices.
//!
//! MULE's `GenerateI`/`GenerateX` steps intersect candidate sets with the
//! neighborhood `Γ(m)` of the newly added vertex (Algorithm 3, line 4) —
//! and for every survivor they also need the edge probability `p({·, m})`.
//! The index therefore has two tiers:
//!
//! * **Membership tier** (every vertex): one bit-row per vertex, all `n`
//!   rows flattened into a single contiguous word array with a fixed word
//!   stride, so a membership probe is a single dependent load
//!   (`words[base + w/64]`) and the whole tier is one allocation. A hit
//!   still pays a gallop search into the CSR row to fetch the edge
//!   probability.
//! * **Dense tier** (hub vertices only): a full `f64` row of length `n`
//!   holding the edge probability to every vertex, with `0.0` marking
//!   non-neighbors (edge probabilities are validated into `(0, 1]`, so
//!   the sentinel is unambiguous). Membership test and probability fetch
//!   collapse into **one load per candidate** — no bitset probe, no
//!   gallop. The stored values are the identical `f64` bits the CSR
//!   stores, so downstream probability arithmetic is bit-equal whichever
//!   tier answers.
//!
//! # Tier selection and memory accounting
//!
//! A dense row costs `8·n` bytes against the membership row's `n/8`
//! (64× more), so dense rows are reserved for the vertices whose rows
//! are probed most. Selection is:
//!
//! 1. **Eligibility floor**: `deg(v) ≥ max(MIN_DENSE_DEGREE,
//!    DENSE_HUB_DEGREE_FACTOR · mean-degree)`. The absolute part (16)
//!    guards tiny rows: the CSR row spans a couple of cache lines and
//!    the gallop terminates almost immediately, so a dense row would
//!    spend memory (and cache) without measurable per-probe savings.
//!    The relative part restricts the tier to *real* hubs — vertices
//!    far above the mean, where heavy-tailed graphs concentrate their
//!    filter probes; on uniform-degree graphs (no hubs) the tier stays
//!    empty rather than paying build cost for average rows (see
//!    [`DENSE_HUB_DEGREE_FACTOR`]).
//! 2. **Cache residency**: rows are only built while `8·n` stays within
//!    [`DENSE_ROW_MAX_BYTES`]. The filter's probes are reject-dominated,
//!    and beyond cache a dense probe trades a hot bitset-word load for a
//!    cold line — measured as a net loss (build cost included) on
//!    whole-graph kernels; see the constant's docs.
//! 3. **Budget**: eligible vertices are admitted in descending degree
//!    order (ties by vertex id) while the total dense-tier size
//!    `rows · 8 · n` stays within `dense_budget_bytes`. High-degree
//!    vertices both own the biggest search subtrees and appear as the
//!    filter pivot most often, so a bounded budget concentrates the
//!    dense rows where the probes are.
//!
//! Since the preprocessing pipeline hands every enumerator a compact,
//! vertex-remapped per-component kernel, `n` here is the *component*
//! size — which is what makes dense rows affordable on sharded inputs.
//! [`NeighborhoodIndex::should_build`] still gates the membership tier
//! on small/dense graphs (all the paper's Figure 1 inputs fit easily);
//! `mule`'s enumeration picks automatically and exposes both budgets in
//! its config.

use crate::bitset::{self, AndOnesIter, OnesIter};
use crate::error::VertexId;
use crate::graph::UncertainGraph;

/// Dense-tier eligibility floor: vertices below this degree never get a
/// dense probability row (see the module docs for the rationale).
pub const MIN_DENSE_DEGREE: usize = 16;

/// Dense-tier hub factor: a vertex is a *hub* only when its degree is at
/// least this multiple of the graph's mean degree (on top of the
/// absolute [`MIN_DENSE_DEGREE`] floor). Uniform-degree graphs (ER) have
/// no hubs — every vertex clears an absolute floor together, and
/// building dense rows for hundreds of equally-average vertices was
/// measured as pure build-cost loss (+80% on the scaled ER point) —
/// while heavy-tailed graphs (Chung–Lu wiki-vote, BA) concentrate their
/// filter probes on the few vertices far above the mean, where the rows
/// pay off.
pub const DENSE_HUB_DEGREE_FACTOR: usize = 3;

/// Largest dense row the index will build, in bytes (`8·n` per row).
/// The filter's probes are reject-dominated (hit rates under 10% on the
/// paper's inputs), so a dense row only wins while it stays
/// cache-resident — the `filter_kernel` bench's `intersect` sweep
/// measures dense-direct 2–4× ahead of bitset+gallop on a 32 KiB row,
/// while beyond cache each probe trades a hot bitset-word load for a
/// cold line of an `8·n`-byte row *and* the build pays `8·n` bytes of
/// zero-and-scatter per hub (tens of milliseconds at whole-graph scale,
/// measured on the wiki-vote headline input). Components above
/// `DENSE_ROW_MAX_BYTES / 8` vertices therefore skip the tier entirely;
/// the preprocessing pipeline's compact per-component kernels are the
/// intended beneficiaries.
pub const DENSE_ROW_MAX_BYTES: usize = 32 << 10;

/// Tiered neighborhood rows: O(1) bit-membership probes for every
/// vertex, one-load membership+probability rows for hubs.
pub struct NeighborhoodIndex {
    /// `n` membership rows of `stride` words each, row `v` at `v * stride`.
    words: Vec<u64>,
    /// Words per membership row: `ceil(n / 64)`.
    stride: usize,
    /// Number of vertices covered.
    n: usize,
    /// `dense_slot[v]` is the dense-tier row number of `v`, or
    /// `NO_DENSE_ROW` when `v` has only a membership row.
    dense_slot: Vec<u32>,
    /// Concatenated dense probability rows, each of length `n`;
    /// `0.0` = non-neighbor.
    dense: Vec<f64>,
    /// Smallest degree among admitted hubs (`None` when the dense tier
    /// is empty) — the realized auto-tuned hub threshold.
    hub_threshold: Option<usize>,
}

const NO_DENSE_ROW: u32 = u32::MAX;

/// One membership row of a [`NeighborhoodIndex`]: a borrowed word slice
/// with O(1) membership probes.
#[derive(Clone, Copy)]
pub struct Row<'a> {
    words: &'a [u64],
}

impl<'a> Row<'a> {
    /// O(1) membership probe. Keys at or beyond the index capacity are
    /// absent by definition.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        match self.words.get(key / 64) {
            Some(w) => w & (1u64 << (key % 64)) != 0,
            None => false,
        }
    }

    /// Iterate the row's members (neighbor ids) in increasing order.
    pub fn iter(&self) -> OnesIter<'a> {
        OnesIter::new(self.words)
    }

    /// The raw words (for word-wise set algebra against other rows).
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }
}

impl NeighborhoodIndex {
    /// Build the index from a graph. The membership tier costs `n² / 8`
    /// bytes in one allocation (callers on large graphs should consult
    /// [`Self::should_build`] first); the dense tier adds `8·n` bytes
    /// per admitted hub, capped by `dense_budget_bytes` (pass `0` to
    /// disable the dense tier entirely).
    pub fn build(g: &UncertainGraph, dense_budget_bytes: usize) -> Self {
        let n = g.num_vertices();
        let stride = n.div_ceil(64);
        let mut words = vec![0u64; n * stride];
        for v in g.vertices() {
            let base = v as usize * stride;
            for &w in g.neighbors(v) {
                words[base + w as usize / 64] |= 1u64 << (w as usize % 64);
            }
        }

        // Dense tier: eligible hubs in descending degree order (ties by
        // id — the sort is stable over an id-ascending scan), admitted
        // while the tier stays within budget. Rows beyond the
        // cache-residency cap are never built (see
        // [`DENSE_ROW_MAX_BYTES`]).
        let row_bytes = n.saturating_mul(8);
        let mean_degree = (2 * g.num_edges()).checked_div(n).unwrap_or(0);
        let hub_floor = MIN_DENSE_DEGREE.max(DENSE_HUB_DEGREE_FACTOR * mean_degree);
        let mut hubs: Vec<VertexId> = if row_bytes <= DENSE_ROW_MAX_BYTES {
            g.vertices().filter(|&v| g.degree(v) >= hub_floor).collect()
        } else {
            Vec::new()
        };
        hubs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        let max_rows = dense_budget_bytes.checked_div(row_bytes).unwrap_or(0);
        hubs.truncate(max_rows);

        let mut dense_slot = vec![NO_DENSE_ROW; n];
        let mut dense = vec![0.0f64; hubs.len() * n];
        for (slot, &v) in hubs.iter().enumerate() {
            dense_slot[v as usize] = slot as u32;
            let base = slot * n;
            for (w, p) in g.neighbors_with_probs(v) {
                dense[base + w as usize] = p;
            }
        }
        let hub_threshold = hubs.iter().map(|&v| g.degree(v)).min();

        NeighborhoodIndex {
            words,
            stride,
            n,
            dense_slot,
            dense,
            hub_threshold,
        }
    }

    /// Heuristic for the membership tier: build the index when its word
    /// array costs at most `max_bytes` (default used by `mule` is
    /// 64 MiB). The dense tier is budgeted separately at build time.
    pub fn should_build(g: &UncertainGraph, max_bytes: usize) -> bool {
        let n = g.num_vertices();
        // n rows of ceil(n/64) u64 words.
        n.saturating_mul(n.div_ceil(64)).saturating_mul(8) <= max_bytes
    }

    /// O(1) edge membership probe.
    #[inline]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.row(u).contains(v as usize)
    }

    /// The membership row of `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> Row<'_> {
        let base = v as usize * self.stride;
        Row {
            words: &self.words[base..base + self.stride],
        }
    }

    /// The dense probability row of `v`, if `v` made the dense tier:
    /// `row[w]` is the probability of edge `{v, w}`, `0.0` when the edge
    /// is absent. Always length [`Self::num_vertices`].
    #[inline]
    pub fn dense_row(&self, v: VertexId) -> Option<&[f64]> {
        let slot = self.dense_slot[v as usize];
        if slot == NO_DENSE_ROW {
            return None;
        }
        let base = slot as usize * self.n;
        Some(&self.dense[base..base + self.n])
    }

    /// Number of vertices holding a dense probability row.
    pub fn dense_rows(&self) -> usize {
        self.dense.len().checked_div(self.n).unwrap_or(0)
    }

    /// Bytes held by the dense tier.
    pub fn dense_bytes(&self) -> usize {
        self.dense.len() * 8
    }

    /// The realized hub threshold: the smallest degree among vertices
    /// admitted to the dense tier (`None` when the tier is empty).
    pub fn hub_degree_threshold(&self) -> Option<usize> {
        self.hub_threshold
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// `|Γ(u) ∩ Γ(v)|` — the shared-neighborhood size used by the
    /// Modani–Dey filter in `mule::pruning`. Word-wise popcount, no
    /// materialization.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        bitset::and_count_words(self.row(u).words(), self.row(v).words())
    }

    /// Iterate `Γ(u) ∩ Γ(v)` in increasing order without materializing it
    /// (masked iteration over the two word rows).
    pub fn iter_common(&self, u: VertexId, v: VertexId) -> AndOnesIter<'_> {
        AndOnesIter::new(self.row(u).words(), self.row(v).words())
    }
}

/// Count common neighbors with a sorted-merge over CSR adjacency, for graphs
/// where the dense index is too large. Equivalent to
/// [`NeighborhoodIndex::common_neighbors`].
pub fn common_neighbors_merge(g: &UncertainGraph, u: VertexId, v: VertexId) -> usize {
    let (mut a, mut b) = (
        g.neighbors(u).iter().peekable(),
        g.neighbors(v).iter().peekable(),
    );
    let mut count = 0;
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                a.next();
                b.next();
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges};
    use crate::prob::Prob;

    /// Unbounded dense budget for tests that want the tier populated.
    const UNBOUNDED: usize = usize::MAX;

    fn path4() -> UncertainGraph {
        from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap()
    }

    /// A star hub of degree ≥ `MIN_DENSE_DEGREE` plus a light periphery.
    fn hub_graph() -> UncertainGraph {
        let mut edges: Vec<(u32, u32, f64)> =
            (1..=20u32).map(|v| (0, v, 0.5 + 0.01 * v as f64)).collect();
        edges.push((21, 22, 0.25));
        from_edges(23, &edges).unwrap()
    }

    #[test]
    fn index_matches_graph_edges() {
        let g = path4();
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(idx.contains_edge(u, v), g.contains_edge(u, v), "({u},{v})");
            }
        }
        assert_eq!(idx.num_vertices(), 4);
    }

    #[test]
    fn rows_expose_neighborhoods() {
        let g = path4();
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        assert_eq!(idx.row(1).iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(idx.row(1).contains(0));
        assert!(!idx.row(1).contains(3));
        // Out-of-range probes are absent, not a panic.
        assert!(!idx.row(1).contains(64));
    }

    #[test]
    fn rows_are_wide_enough_past_one_word() {
        // 70 vertices forces a 2-word stride; check both words of a row.
        let g = from_edges(70, &[(0, 1, 0.5), (0, 69, 0.5)]).unwrap();
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        assert_eq!(idx.row(0).iter().collect::<Vec<_>>(), vec![1, 69]);
        assert!(idx.contains_edge(69, 0));
        assert_eq!(idx.common_neighbors(1, 69), 1); // via vertex 0
        assert_eq!(idx.iter_common(1, 69).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn dense_tier_admits_only_hubs_and_stores_csr_bits() {
        let g = hub_graph();
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        assert_eq!(idx.dense_rows(), 1, "only the hub clears the floor");
        assert_eq!(idx.hub_degree_threshold(), Some(20));
        assert!(idx.dense_row(1).is_none());
        assert!(idx.dense_row(21).is_none());
        let row = idx.dense_row(0).unwrap();
        assert_eq!(row.len(), g.num_vertices());
        for v in g.vertices() {
            let expect = g.edge_prob_raw(0, v).unwrap_or(0.0);
            assert_eq!(row[v as usize].to_bits(), expect.to_bits(), "slot {v}");
        }
        assert_eq!(idx.dense_bytes(), 8 * g.num_vertices());
    }

    #[test]
    fn dense_budget_zero_disables_the_tier() {
        let idx = NeighborhoodIndex::build(&hub_graph(), 0);
        assert_eq!(idx.dense_rows(), 0);
        assert_eq!(idx.hub_degree_threshold(), None);
        assert!(idx.dense_row(0).is_none());
        assert_eq!(idx.dense_bytes(), 0);
        // The membership tier is unaffected.
        assert!(idx.contains_edge(0, 20));
    }

    #[test]
    fn dense_budget_admits_highest_degrees_first() {
        // Two hubs of degree 20 and 17; a budget for exactly one row
        // must pick the degree-20 hub.
        let mut edges: Vec<(u32, u32, f64)> = (1..=20u32).map(|v| (0, v, 0.9)).collect();
        for v in 1..=17u32 {
            edges.push((30, v, 0.8));
        }
        let g = from_edges(31, &edges).unwrap();
        let one_row = 8 * g.num_vertices();
        let idx = NeighborhoodIndex::build(&g, one_row);
        assert_eq!(idx.dense_rows(), 1);
        assert!(idx.dense_row(0).is_some());
        assert!(idx.dense_row(30).is_none());
        assert_eq!(idx.hub_degree_threshold(), Some(20));
        let both = NeighborhoodIndex::build(&g, 2 * one_row);
        assert_eq!(both.dense_rows(), 2);
        assert_eq!(both.hub_degree_threshold(), Some(17));
    }

    #[test]
    fn common_neighbors_dense_and_merge_agree() {
        let g = complete_graph(6, Prob::new(0.5).unwrap());
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert_eq!(idx.common_neighbors(u, v), 4);
                    assert_eq!(common_neighbors_merge(&g, u, v), 4);
                }
            }
        }
        let p = path4();
        let pidx = NeighborhoodIndex::build(&p, UNBOUNDED);
        assert_eq!(pidx.common_neighbors(0, 2), 1); // via vertex 1
        assert_eq!(common_neighbors_merge(&p, 0, 2), 1);
        assert_eq!(pidx.common_neighbors(0, 3), 0);
        assert_eq!(common_neighbors_merge(&p, 0, 3), 0);
    }

    #[test]
    fn iter_common_matches_count() {
        let g = complete_graph(9, Prob::new(0.5).unwrap());
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        for u in 0..9 {
            for v in 0..9 {
                if u != v {
                    assert_eq!(
                        idx.iter_common(u, v).count(),
                        idx.common_neighbors(u, v),
                        "({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn should_build_thresholds() {
        let g = path4();
        assert!(NeighborhoodIndex::should_build(&g, 1 << 20));
        assert!(!NeighborhoodIndex::should_build(&g, 0));
    }

    #[test]
    fn empty_graph_builds_empty_index() {
        let g = crate::builder::GraphBuilder::new(0).build();
        let idx = NeighborhoodIndex::build(&g, UNBOUNDED);
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.dense_rows(), 0);
        assert_eq!(idx.dense_bytes(), 0);
    }
}
