//! The uncertain graph: an immutable CSR structure with per-edge
//! probabilities.
//!
//! An uncertain graph `G = (V, E, p)` (Section 2 of the paper) is a simple
//! undirected graph plus a function `p : E → (0, 1]` giving each edge an
//! independent probability of existence. `G` is equivalently a distribution
//! over the `2^m` deterministic subgraphs of `(V, E)` — see
//! [`crate::sample`] for that view.
//!
//! Storage is compressed sparse row (CSR): per-vertex neighbor lists are
//! sorted by vertex id with a parallel probability array, so
//!
//! * neighbor iteration is a contiguous slice scan,
//! * edge-probability lookup is a binary search in `O(log deg)`,
//! * the whole structure is immutable and freely shareable across threads.

use crate::error::{GraphError, VertexId};
use crate::prob::Prob;

/// An immutable uncertain graph in CSR form. Construct via
/// [`GraphBuilder`](crate::builder::GraphBuilder) or the convenience
/// constructors in [`crate::builder`].
#[derive(Clone, PartialEq)]
pub struct UncertainGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`probs` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists (each undirected edge appears twice).
    neighbors: Vec<VertexId>,
    /// `probs[i]` is the probability of the edge to `neighbors[i]`.
    probs: Vec<f64>,
    /// Number of undirected edges.
    m: usize,
    /// Optional human-readable name (dataset label).
    name: String,
}

impl UncertainGraph {
    /// Internal constructor used by the builder; inputs must already satisfy
    /// the CSR invariants (sorted, symmetric, loop-free, valid probs).
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        probs: Vec<f64>,
        name: String,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), probs.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        let m = neighbors.len() / 2;
        UncertainGraph {
            offsets,
            neighbors,
            probs,
            m,
            name,
        }
    }

    /// Construct a graph directly from CSR arrays, validating every
    /// invariant ([`Self::check_invariants`]) before accepting them.
    ///
    /// This is the entry point for deserializers that store the CSR
    /// arrays verbatim (the `ugraph-io` catalog format): unlike the
    /// builder it performs no sorting or symmetrization, so the caller's
    /// byte layout survives exactly — but nothing unchecked gets in. The
    /// error string names the first violated invariant.
    pub fn try_from_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        probs: Vec<f64>,
        name: String,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets array is empty (needs n + 1 entries)".into());
        }
        if offsets.len() - 1 > VertexId::MAX as usize {
            return Err(format!("vertex count {} exceeds u32", offsets.len() - 1));
        }
        if neighbors.len() != probs.len() {
            return Err("neighbor/prob arrays differ in length".into());
        }
        if *offsets.last().unwrap() != neighbors.len() {
            return Err("offsets do not cover neighbor array".into());
        }
        let g = Self::from_csr_parts(offsets, neighbors, probs, name);
        g.check_invariants()?;
        Ok(g)
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// The dataset name, if one was attached (empty string otherwise).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replace the dataset name, returning the modified graph.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Degree of `v`, i.e. `|Γ(v)|`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted slice of neighbors of `v` (the paper's `Γ(v)`).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Probabilities parallel to [`Self::neighbors`].
    #[inline]
    pub fn neighbor_probs(&self, v: VertexId) -> &[f64] {
        let v = v as usize;
        &self.probs[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterate `(neighbor, probability)` pairs of `v` in increasing neighbor
    /// order.
    pub fn neighbors_with_probs(
        &self,
        v: VertexId,
    ) -> impl ExactSizeIterator<Item = (VertexId, f64)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_probs(v).iter().copied())
    }

    /// True if the possible edge `{u, v}` is in `E`.
    #[inline]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_prob_raw(u, v).is_some()
    }

    /// Probability of the edge `{u, v}`, or `None` if the edge is absent.
    pub fn edge_prob(&self, u: VertexId, v: VertexId) -> Option<Prob> {
        self.edge_prob_raw(u, v).map(Prob::new_unchecked)
    }

    /// Raw `f64` probability lookup via binary search into the sorted
    /// adjacency of the lower-degree endpoint.
    #[inline]
    pub fn edge_prob_raw(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if u == v || u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return None;
        }
        // Search the shorter list: lookups on skewed-degree graphs then cost
        // O(log min(deg u, deg v)).
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(a);
        let idx = nbrs.binary_search(&b).ok()?;
        Some(self.neighbor_probs(a)[idx])
    }

    /// Iterate all undirected edges once, as `(u, v, prob)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors_with_probs(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, p)| (u, v, p))
        })
    }

    /// Iterate vertex ids `0..n`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Largest degree in the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Smallest edge probability, or `None` for an edgeless graph.
    pub fn min_edge_prob(&self) -> Option<f64> {
        self.probs.iter().copied().reduce(f64::min)
    }

    /// Validate the α threshold per the paper's requirement `0 < α ≤ 1`.
    pub fn validate_alpha(alpha: f64) -> Result<Prob, GraphError> {
        Prob::new(alpha).map_err(|_| GraphError::InvalidAlpha { value: alpha })
    }

    /// Check internal CSR invariants; used by tests and the binary reader.
    ///
    /// Verified invariants: offsets monotone and bounded, adjacency sorted
    /// strictly increasing (no duplicates), no self-loops, probabilities in
    /// `(0, 1]`, and symmetry (`v ∈ Γ(u)` ⇔ `u ∈ Γ(v)` with equal
    /// probability).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
        }
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("offsets do not cover neighbor array".into());
        }
        if self.neighbors.len() != self.probs.len() {
            return Err("neighbor/prob arrays differ in length".into());
        }
        for v in 0..n as VertexId {
            let nbrs = self.neighbors(v);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            for (&u, &p) in nbrs.iter().zip(self.neighbor_probs(v)) {
                if u == v {
                    return Err(format!("self-loop on {v}"));
                }
                if u as usize >= n {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if !(p > 0.0 && p <= 1.0) {
                    return Err(format!("probability {p} on edge {{{v},{u}}} out of range"));
                }
                match self.edge_prob_raw(u, v) {
                    Some(q) if q == p => {}
                    _ => return Err(format!("edge {{{v},{u}}} not symmetric")),
                }
            }
        }
        if !self.neighbors.len().is_multiple_of(2) {
            return Err("odd number of directed arcs".into());
        }
        Ok(())
    }
}

impl std::fmt::Debug for UncertainGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UncertainGraph")
            .field("name", &self.name)
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn triangle() -> crate::UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_edge_prob(), Some(0.25));
    }

    #[test]
    fn neighbors_are_sorted_with_parallel_probs() {
        let g = triangle();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbor_probs(1), &[0.5, 0.25]);
        let pairs: Vec<_> = g.neighbors_with_probs(1).collect();
        assert_eq!(pairs, vec![(0, 0.5), (2, 0.25)]);
    }

    #[test]
    fn edge_prob_lookup_both_directions() {
        let g = triangle();
        assert_eq!(g.edge_prob_raw(0, 1), Some(0.5));
        assert_eq!(g.edge_prob_raw(1, 0), Some(0.5));
        assert_eq!(g.edge_prob(2, 0).unwrap().get(), 1.0);
        assert_eq!(g.edge_prob_raw(0, 0), None);
        assert_eq!(g.edge_prob_raw(0, 99), None);
        assert!(g.contains_edge(1, 2));
    }

    #[test]
    fn edges_iterates_each_once_lexicographically() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 0.5), (0, 2, 1.0), (1, 2, 0.25)]);
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.min_edge_prob(), None);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn invariants_hold_for_builder_output() {
        triangle().check_invariants().unwrap();
        GraphBuilder::new(0).build().check_invariants().unwrap();
    }

    #[test]
    fn name_round_trip() {
        let g = triangle().with_name("tri");
        assert_eq!(g.name(), "tri");
        assert!(format!("{g:?}").contains("tri"));
    }

    #[test]
    fn validate_alpha_bounds() {
        assert!(crate::UncertainGraph::validate_alpha(0.5).is_ok());
        assert!(crate::UncertainGraph::validate_alpha(1.0).is_ok());
        assert!(crate::UncertainGraph::validate_alpha(0.0).is_err());
        assert!(crate::UncertainGraph::validate_alpha(1.1).is_err());
    }

    #[test]
    fn try_from_csr_accepts_valid_parts() {
        let g = triangle().with_name("tri");
        let offsets: Vec<usize> = (0..=3).map(|v| if v == 0 { 0 } else { 2 * v }).collect();
        let mut neighbors = Vec::new();
        let mut probs = Vec::new();
        for v in 0..3u32 {
            neighbors.extend_from_slice(g.neighbors(v));
            probs.extend_from_slice(g.neighbor_probs(v));
        }
        let back =
            crate::UncertainGraph::try_from_csr(offsets, neighbors, probs, "tri".into()).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.name(), "tri");
    }

    #[test]
    fn try_from_csr_rejects_invalid_parts() {
        use crate::UncertainGraph as G;
        // Empty offsets.
        assert!(G::try_from_csr(vec![], vec![], vec![], String::new()).is_err());
        // Offsets not covering the neighbor array.
        assert!(G::try_from_csr(vec![0, 1], vec![], vec![], String::new()).is_err());
        // Mismatched neighbor/prob lengths.
        assert!(G::try_from_csr(vec![0, 1], vec![0], vec![], String::new()).is_err());
        // Self-loop.
        assert!(G::try_from_csr(vec![0, 1], vec![0], vec![0.5], String::new()).is_err());
        // Asymmetric adjacency: 0 → 1 without 1 → 0.
        assert!(G::try_from_csr(vec![0, 1, 1], vec![1], vec![0.5], String::new()).is_err());
        // Probability out of range.
        assert!(G::try_from_csr(vec![0, 1, 2], vec![1, 0], vec![1.5, 1.5], String::new()).is_err());
        // Odd arc count / broken symmetry stays out.
        assert!(G::try_from_csr(vec![0, 2, 2], vec![1, 1], vec![0.5, 0.5], String::new()).is_err());
    }
}
