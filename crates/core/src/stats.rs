//! Summary statistics for graphs — the columns of the paper's Table 1 plus
//! distributional diagnostics used when validating dataset stand-ins.

use crate::graph::UncertainGraph;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of an uncertain graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `2m / n` (0 for the empty graph).
    pub mean_degree: f64,
    /// Edge density `2m / (n(n-1))` (0 when `n < 2`).
    pub density: f64,
    /// Minimum edge probability (1.0 for edgeless graphs, by convention).
    pub min_prob: f64,
    /// Maximum edge probability (1.0 for edgeless graphs, by convention).
    pub max_prob: f64,
    /// Mean edge probability (1.0 for edgeless graphs, by convention).
    pub mean_prob: f64,
}

impl GraphStats {
    /// Compute statistics in a single pass over the graph.
    pub fn compute(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let (mut min_d, mut max_d) = (usize::MAX, 0usize);
        for v in g.vertices() {
            let d = g.degree(v);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
        if n == 0 {
            min_d = 0;
        }
        let (mut min_p, mut max_p, mut sum_p) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for (_, _, p) in g.edges() {
            min_p = min_p.min(p);
            max_p = max_p.max(p);
            sum_p += p;
        }
        let (min_prob, max_prob, mean_prob) = if m == 0 {
            (1.0, 1.0, 1.0)
        } else {
            (min_p, max_p, sum_p / m as f64)
        };
        GraphStats {
            name: g.name().to_string(),
            n,
            m,
            min_degree: min_d,
            max_degree: max_d,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            density: if n < 2 {
                0.0
            } else {
                2.0 * m as f64 / (n as f64 * (n as f64 - 1.0))
            },
            min_prob,
            max_prob,
            mean_prob,
        }
    }
}

/// Degree histogram: `hist[d]` is the number of vertices of degree `d`.
pub fn degree_histogram(g: &UncertainGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    if g.num_vertices() == 0 {
        hist.clear();
    }
    hist
}

/// Global clustering coefficient (transitivity): `3 × triangles / wedges`,
/// computed on the deterministic skeleton. Expensive (`O(Σ deg²)`), intended
/// for dataset validation on small/medium graphs.
pub fn global_clustering(g: &UncertainGraph) -> f64 {
    let mut wedges = 0u64;
    let mut closed = 0u64; // ordered wedge (u, v, w) with u-w edge, counted per center v
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        let d = nbrs.len() as u64;
        wedges += d.saturating_sub(1) * d / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.contains_edge(a, b) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_graph, from_edges, GraphBuilder};
    use crate::prob::Prob;

    #[test]
    fn stats_of_triangle_plus_pendant() {
        let g = from_edges(4, &[(0, 1, 0.2), (1, 2, 0.4), (0, 2, 0.6), (2, 3, 0.8)])
            .unwrap()
            .with_name("fix");
        let s = GraphStats::compute(&g);
        assert_eq!(s.name, "fix");
        assert_eq!((s.n, s.m), (4, 4));
        assert_eq!((s.min_degree, s.max_degree), (1, 3));
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
        assert!((s.density - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!((s.min_prob, s.max_prob), (0.2, 0.8));
        assert!((s.mean_prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&GraphBuilder::new(0).build());
        assert_eq!((s.n, s.m, s.min_degree, s.max_degree), (0, 0, 0, 0));
        assert_eq!(s.mean_prob, 1.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn stats_of_edgeless_graph() {
        let s = GraphStats::compute(&GraphBuilder::new(3).build());
        assert_eq!((s.n, s.m), (3, 0));
        assert_eq!((s.min_degree, s.max_degree), (0, 0));
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5), (2, 3, 0.5)]).unwrap();
        assert_eq!(degree_histogram(&g), vec![0, 1, 2, 1]); // degrees 2,2,3,1
        assert!(degree_histogram(&GraphBuilder::new(0).build()).is_empty());
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = complete_graph(5, Prob::new(0.5).unwrap());
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = from_edges(4, &[(0, 1, 0.5), (0, 2, 0.5), (0, 3, 0.5)]).unwrap();
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant 3 on 2: wedges = 1+1+3+0 = 5, closed = 3.
        let g = from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5), (2, 3, 0.5)]).unwrap();
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }
}
