//! Validated probability values and probability arithmetic.
//!
//! The paper assigns every edge a probability of existence `p(e) ∈ (0, 1]`
//! (Section 2). Clique probabilities are products of edge probabilities
//! (Observation 1), and the enumeration algorithms maintain those products
//! incrementally. This module provides:
//!
//! * [`Prob`] — a newtype over `f64` that is validated to lie in `(0, 1]` at
//!   the API boundary, so the rest of the library never has to re-check.
//! * [`LogProb`] — a log-domain accumulator for very long products, used by
//!   diagnostics that need to report probabilities of huge cliques without
//!   underflow.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when constructing a [`Prob`] from an out-of-range value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbError {
    /// The offending raw value.
    pub value: f64,
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probability {} outside the half-open interval (0, 1]",
            self.value
        )
    }
}

impl std::error::Error for ProbError {}

/// An edge-existence probability, guaranteed to lie in `(0, 1]`.
///
/// Zero is excluded on purpose: the paper's model (`p : E → (0, 1]`) treats a
/// zero-probability edge as a non-edge, and keeping it out of the type means
/// clique probabilities can never silently become zero through a stored edge.
///
/// ```
/// use ugraph_core::Prob;
/// let p = Prob::new(0.5).unwrap();
/// assert_eq!(p.get(), 0.5);
/// assert!(Prob::new(0.0).is_err());
/// assert!(Prob::new(1.5).is_err());
/// assert!(Prob::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Prob(f64);

impl Prob {
    /// The probability `1.0` — a deterministic edge.
    pub const ONE: Prob = Prob(1.0);

    /// Validate and wrap a raw probability.
    ///
    /// Returns an error unless `0 < value <= 1` (NaN is rejected because all
    /// comparisons with NaN are false).
    pub fn new(value: f64) -> Result<Self, ProbError> {
        if value > 0.0 && value <= 1.0 {
            Ok(Prob(value))
        } else {
            Err(ProbError { value })
        }
    }

    /// Wrap a value already known to be in range.
    ///
    /// # Panics
    /// Panics in debug builds if the value is out of range. Intended for hot
    /// paths where the invariant is structurally guaranteed (e.g. products of
    /// stored probabilities are only used as raw `f64`, never rewrapped).
    #[inline]
    pub fn new_unchecked(value: f64) -> Self {
        debug_assert!(value > 0.0 && value <= 1.0, "Prob out of range: {value}");
        Prob(value)
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Natural logarithm of the probability (always ≤ 0).
    #[inline]
    pub fn ln(self) -> f64 {
        self.0.ln()
    }

    /// Clamp an arbitrary finite value into `(0, 1]`, mapping non-positive
    /// values to `min_positive` and values above one to exactly one.
    ///
    /// Useful for generators that produce scores from noisy formulas.
    pub fn clamped(value: f64, min_positive: f64) -> Self {
        assert!(
            min_positive > 0.0 && min_positive <= 1.0,
            "min_positive must itself be a valid probability"
        );
        if value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            Prob(min_positive)
        } else if value > 1.0 {
            Prob(1.0)
        } else {
            Prob(value)
        }
    }
}

impl TryFrom<f64> for Prob {
    type Error = ProbError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Prob::new(value)
    }
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.0
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A probability maintained in log-space, safe against underflow for products
/// of hundreds of thousands of factors.
///
/// ```
/// use ugraph_core::{LogProb, Prob};
/// let mut lp = LogProb::one();
/// for _ in 0..10_000 {
///     lp.mul(Prob::new(0.5).unwrap());
/// }
/// // 0.5^10000 underflows f64 (~1e-3010) but the log form is exact enough.
/// assert!((lp.ln() - 10_000.0 * 0.5f64.ln()).abs() < 1e-6);
/// assert_eq!(lp.to_f64(), 0.0); // underflow when converted back
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogProb {
    ln: f64,
}

impl LogProb {
    /// The multiplicative identity (probability one, log zero).
    pub fn one() -> Self {
        LogProb { ln: 0.0 }
    }

    /// Build from a linear-domain probability.
    pub fn from_prob(p: Prob) -> Self {
        LogProb { ln: p.ln() }
    }

    /// Multiply by a probability (adds logs).
    #[inline]
    pub fn mul(&mut self, p: Prob) {
        self.ln += p.ln();
    }

    /// The accumulated natural log.
    #[inline]
    pub fn ln(self) -> f64 {
        self.ln
    }

    /// Convert back to linear domain (may underflow to zero).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.ln.exp()
    }

    /// True if this log-probability is at least `alpha` (compared in log
    /// space, so no underflow for tiny values).
    #[inline]
    pub fn at_least(self, alpha: Prob) -> bool {
        self.ln >= alpha.ln()
    }
}

impl Default for LogProb {
    fn default() -> Self {
        LogProb::one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_unit_interval() {
        for v in [1e-300, 1e-9, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(Prob::new(v).unwrap().get(), v);
        }
    }

    #[test]
    fn rejects_zero_negative_large_nan() {
        for v in [0.0, -0.5, -0.0, 1.0000001, 2.0, f64::NAN, f64::INFINITY] {
            assert!(Prob::new(v).is_err(), "{v} should be rejected");
        }
    }

    #[test]
    fn error_displays_value() {
        let e = Prob::new(3.0).unwrap_err();
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn one_constant_is_one() {
        assert_eq!(Prob::ONE.get(), 1.0);
        assert_eq!(Prob::ONE.ln(), 0.0);
    }

    #[test]
    fn clamped_maps_out_of_range() {
        assert_eq!(Prob::clamped(-2.0, 1e-6).get(), 1e-6);
        assert_eq!(Prob::clamped(0.0, 1e-6).get(), 1e-6);
        assert_eq!(Prob::clamped(f64::NAN, 1e-6).get(), 1e-6);
        assert_eq!(Prob::clamped(7.0, 1e-6).get(), 1.0);
        assert_eq!(Prob::clamped(0.3, 1e-6).get(), 0.3);
    }

    #[test]
    #[should_panic]
    fn clamped_rejects_bad_floor() {
        let _ = Prob::clamped(0.5, 0.0);
    }

    #[test]
    fn try_from_round_trips() {
        let p: Prob = 0.75f64.try_into().unwrap();
        let raw: f64 = p.into();
        assert_eq!(raw, 0.75);
    }

    #[test]
    fn log_prob_tracks_products() {
        let mut lp = LogProb::one();
        let mut direct = 1.0f64;
        for i in 1..=20 {
            let p = Prob::new(i as f64 / 21.0).unwrap();
            lp.mul(p);
            direct *= p.get();
        }
        assert!((lp.to_f64() - direct).abs() < 1e-12);
    }

    #[test]
    fn log_prob_threshold_without_underflow() {
        let mut lp = LogProb::one();
        for _ in 0..100_000 {
            lp.mul(Prob::new(0.9).unwrap());
        }
        assert!(!lp.at_least(Prob::new(0.5).unwrap()));
        assert!(
            lp.at_least(Prob::new_unchecked(f64::MIN_POSITIVE))
                == (lp.ln() >= f64::MIN_POSITIVE.ln())
        );
    }

    #[test]
    fn log_prob_from_prob_matches_mul() {
        let p = Prob::new(0.37).unwrap();
        let a = LogProb::from_prob(p);
        let mut b = LogProb::one();
        b.mul(p);
        assert_eq!(a, b);
    }

    #[test]
    fn prob_ordering() {
        let a = Prob::new(0.2).unwrap();
        let b = Prob::new(0.7).unwrap();
        assert!(a < b);
    }
}
