//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace has no crates.io access and no serde *format* crate,
//! so the `#[derive(Serialize, Deserialize)]` annotations on public
//! model types only need to parse, not generate code. These derives
//! accept the full `#[serde(...)]` attribute grammar and expand to
//! nothing; the matching marker traits live in the sibling `serde`
//! shim crate.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attrs); expands
/// to an empty impl-less token stream.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attrs);
/// expands to an empty token stream.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
