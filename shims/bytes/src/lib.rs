//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the little-endian accessors the UGB1 binary format uses. Backed
//! by a plain `Vec<u8>` plus a read cursor — no refcounted slabs, which
//! is fine for whole-file (de)serialization.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `cnt`. Panics past the end.
    fn advance(&mut self, cnt: usize);

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Copy `dst.len()` bytes out and advance. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Detach the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64` and advance.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer for serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"UGB1");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(0.125);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"UGB1");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 0.125);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_detaches_view() {
        let mut b = Bytes::from(b"hello world".to_vec());
        b.advance(6);
        let w = b.copy_to_bytes(5);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
