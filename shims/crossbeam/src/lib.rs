//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which post-dates the
//! original crossbeam API this mirrors). The one visible difference
//! from crossbeam: the scope handle is passed to closures **by value**
//! (it is `Copy`), which existing `|scope|` / `move |_|` call sites
//! accept unchanged.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A handle for spawning scoped threads (wraps
    /// [`std::thread::Scope`]; `Copy` so it moves freely into worker
    /// closures).
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The closure receives a copy
        /// of the scope handle (crossbeam convention), so nested spawns
        /// work too.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(self)),
            }
        }
    }

    /// Create a scope: every thread spawned inside is joined before
    /// `scope` returns. Always `Ok` — panics in unjoined workers
    /// propagate as panics (std semantics) rather than as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_share_stack_state() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &x in &data {
                let counter = &counter;
                handles.push(scope.spawn(move |_| {
                    counter.fetch_add(x, Ordering::Relaxed);
                    x * 10
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<usize>()
        })
        .expect("scope failed");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(total, 100);
    }
}
