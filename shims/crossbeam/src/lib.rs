//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which post-dates the
//! original crossbeam API this mirrors). The one visible difference
//! from crossbeam: the scope handle is passed to closures **by value**
//! (it is `Copy`), which existing `|scope|` / `move |_|` call sites
//! accept unchanged.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A handle for spawning scoped threads (wraps
    /// [`std::thread::Scope`]; `Copy` so it moves freely into worker
    /// closures).
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The closure receives a copy
        /// of the scope handle (crossbeam convention), so nested spawns
        /// work too.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(self)),
            }
        }

        /// A builder for scoped threads with a name and/or an explicit
        /// stack size — the crossbeam `scope.builder()` API, backed by
        /// [`std::thread::Builder::spawn_scoped`]. The big-stack server
        /// workers (`mule::thread_util`) use this to spawn scoped
        /// threads with 128 MiB stacks.
        pub fn builder(self) -> ScopedThreadBuilder<'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                inner: std::thread::Builder::new(),
            }
        }
    }

    /// Configures a scoped thread before spawning (name, stack size).
    /// Created by [`Scope::builder`].
    #[derive(Debug)]
    pub struct ScopedThreadBuilder<'scope, 'env: 'scope> {
        scope: Scope<'scope, 'env>,
        inner: std::thread::Builder,
    }

    impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
        /// Name the thread (shows up in panic messages and debuggers).
        pub fn name(mut self, name: String) -> Self {
            self.inner = self.inner.name(name);
            self
        }

        /// Set the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.inner = self.inner.stack_size(size);
            self
        }

        /// Spawn the configured thread inside the scope. Errors are the
        /// OS's thread-creation failures ([`std::io::Error`]).
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = self.scope;
            let inner = self.inner.spawn_scoped(scope.inner, move || f(scope))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    /// Create a scope: every thread spawned inside is joined before
    /// `scope` returns. Always `Ok` — panics in unjoined workers
    /// propagate as panics (std semantics) rather than as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_share_stack_state() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &x in &data {
                let counter = &counter;
                handles.push(scope.spawn(move |_| {
                    counter.fetch_add(x, Ordering::Relaxed);
                    x * 10
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<usize>()
        })
        .expect("scope failed");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(total, 100);
    }

    #[test]
    fn builder_sets_name_and_stack_size() {
        let name = crate::thread::scope(|scope| {
            let handle = scope
                .builder()
                .name("shim-worker".into())
                .stack_size(4 * 1024 * 1024)
                .spawn(|_| std::thread::current().name().map(str::to_owned))
                .expect("spawn failed");
            handle.join().expect("worker panicked")
        })
        .expect("scope failed");
        assert_eq!(name.as_deref(), Some("shim-worker"));
    }
}
