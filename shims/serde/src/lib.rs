//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives from the
//! `serde_derive` shim and defines matching blanket-implemented marker
//! traits, so both `use serde::{Serialize, Deserialize}` namespaces
//! (macro and trait) resolve. No serialization actually happens —
//! the workspace's wire formats are hand-rolled (see `ugraph-io`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; blanket
/// implemented so `T: Serialize` bounds are always satisfiable).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
