//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, `any::<T>()`, and `collection::vec`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case reports the case index, its inputs' debug
//! rendering, and the exact `seed_from_u64` value that regenerates them
//! (generated values must therefore implement `Debug`, as with real
//! proptest).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The everything-you-need import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                let __inputs = ($($crate::strategy::Strategy::new_value(&($strat), &mut rng),)+);
                // Rendered up front because the body takes the inputs by
                // value; only shown on failure.
                let __inputs_dbg = format!("{:?}", __inputs);
                let ($($pat,)+) = __inputs;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{} [reproduce: SmallRng::seed_from_u64({})]\n  inputs: {}\n  {}",
                        stringify!($name), case, runner.cases(),
                        runner.seed_for_case(case), __inputs_dbg, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Soft assertion: fails the current case (with location info) instead
/// of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("[{}:{}] {}", file!(), line!(), format_args!($($fmt)*))
                )
            );
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)", format_args!($($fmt)+), l, r
        );
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
