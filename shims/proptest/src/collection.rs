//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of collection sizes.
pub trait SizeRange {
    /// Draw a length.
    fn pick(&self, rng: &mut SmallRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut SmallRng) -> usize {
        if self.is_empty() {
            self.start
        } else {
            rng.gen_range(self.clone())
        }
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Output of [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
