//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! `any`, `Just` and `prop_map`.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, Standard};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter-map style transform: regenerate until `f` accepts (the
    /// subset of `prop_filter_map` semantics tests need).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1024 consecutive values: {}",
            self.reason
        );
    }
}

/// Always produces a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Strategy for any value of `T`'s standard distribution (mirrors
/// `proptest::arbitrary::any`).
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        rng.gen::<T>()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let strat =
            (2usize..=10, any::<u64>(), 0.05f64..0.9).prop_map(|(n, seed, d)| (n * 2, seed, d));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let (n, _seed, d) = strat.new_value(&mut rng);
            assert!((4..=20).contains(&n) && n % 2 == 0);
            assert!((0.05..0.9).contains(&d));
        }
    }
}
