//! Test execution: configuration, per-case RNG derivation and the soft
//! failure type used by `prop_assert!`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block (subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed case (mirrors `proptest::test_runner::TestCaseError::Fail`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Drives the cases of one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for the named property. The name seeds the RNG stream, so
    /// each property gets an independent but reproducible sequence.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            config,
            base_seed: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The seed behind [`Self::rng_for_case`] — reported on failure so a
    /// case can be regenerated in isolation.
    pub fn seed_for_case(&self, i: u32) -> u64 {
        self.base_seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1))
    }

    /// Deterministic RNG for case `i`.
    pub fn rng_for_case(&self, i: u32) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for_case(i))
    }
}
