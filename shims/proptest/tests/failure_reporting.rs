//! The shim's one behavioral promise beyond generation: a failing case
//! panics with the inputs and a reproduction seed.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    #[should_panic(expected = "inputs: (")]
    fn failing_case_reports_inputs_and_seed(x in 10usize..20, (a, b) in (0u32..5, 0u32..5)) {
        // Force a failure on the first case; the panic message must
        // carry the generated inputs and the reproduce seed.
        prop_assert!(x > 100, "x={} a={} b={}", x, a, b);
    }

    #[test]
    fn passing_cases_run_to_completion(x in 0usize..100) {
        prop_assert!(x < 100);
    }
}

#[test]
fn reproduce_seed_regenerates_the_case() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::{ProptestConfig, TestRunner};
    use rand::SeedableRng;

    let runner = TestRunner::new(ProptestConfig::with_cases(4), "some_property");
    let strat = (2usize..=14, 0.05f64..0.9);
    let direct = strat.new_value(&mut runner.rng_for_case(2));
    let reseeded = strat.new_value(&mut rand::rngs::SmallRng::seed_from_u64(
        runner.seed_for_case(2),
    ));
    assert_eq!(direct, reseeded);
}
