//! Concrete RNGs. Only [`SmallRng`] is provided: a xoshiro256++
//! generator seeded via SplitMix64, matching the role (small, fast,
//! non-cryptographic) of `rand::rngs::SmallRng`.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable, non-cryptographic RNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_centered() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_signed_spans_wider_than_positive_half() {
        let mut rng = SmallRng::seed_from_u64(10);
        let (mut saw_neg, mut saw_pos) = (false, false);
        for _ in 0..10_000 {
            let x = rng.gen_range(i32::MIN..i32::MAX);
            saw_neg |= x < 0;
            saw_pos |= x > 0;
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
        assert!(
            saw_neg && saw_pos,
            "full-width i32 range should hit both signs"
        );
    }
}
