//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, std-only implementation of the `rand 0.8` API
//! subset the code base actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`, the
//! [`distributions`] module (`Distribution`, `WeightedIndex`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic per seed (the property every test relies
//! on) but are **not** bit-identical to the real `rand` crate.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Alias kept for API compatibility; seeds from a fixed value.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

/// Sampling a value of `Self` from raw random bits (the shim's analogue
/// of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer draw (Lemire-style widening
/// multiply with rejection for exactness).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Offset in u64 space and truncate: correct two's-complement
                // arithmetic even for signed ranges wider than the type's
                // positive half (e.g. i32::MIN..i32::MAX).
                (self.start as u64).wrapping_add(bounded_u64(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(bounded_u64(rng, span)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform on `[0, 1)`, integers uniform over the
    /// domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
