//! Sequence helpers (mirrors `rand::seq`).

use crate::{Rng, RngCore};

/// Extension methods on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }
}
