//! Distributions: the [`Distribution`] trait and [`WeightedIndex`].

use crate::{Rng, RngCore};
use std::borrow::Borrow;

/// A distribution over values of `T` (mirrors
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sampling indices `0..n` proportionally to a weight vector, via
/// binary search on the cumulative sums.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of (borrowable) `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<f64>() * self.total;
        // partition_point returns the first index whose cumulative sum
        // exceeds x, i.e. the item whose weight interval contains x.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_matches_proportions() {
        let weights = vec![1.0, 3.0, 6.0];
        let dist = WeightedIndex::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }
}
