//! Offline stand-in for the `criterion` crate.
//!
//! Benches written against the criterion API compile and run, reporting
//! mean wall-clock time per iteration to stdout. No statistical
//! analysis, warm-up calibration, or HTML reports — this exists so
//! `cargo bench` works in an environment with no crates.io access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` renders as `sort/1024`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly; its return value is passed
    /// through [`black_box`] so it cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the shim has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let n = self.default_sample_size;
        self.run_one(&label, n, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, iterations: u64, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if iterations > 0 {
            bencher.elapsed / iterations as u32
        } else {
            Duration::ZERO
        };
        println!("bench {label:<60} {per_iter:>12.2?}/iter  ({iterations} iters)");
    }
}

/// Collect benchmark functions into a runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
