//! Offline stand-in for the `criterion` crate.
//!
//! Benches written against the criterion API compile and run, timing
//! **each iteration individually** and reporting the distribution
//! (min/median/p95, plus the mean) to stdout — enumeration runtimes are
//! right-skewed, so a bare mean hides regressions in the tail. No
//! warm-up calibration or HTML reports — this exists so `cargo bench`
//! works in an environment with no crates.io access.
//!
//! Set `CRITERION_TSV_DIR` to also append one TSV row per benchmark
//! (`name, iters, min_s, median_s, p95_s, mean_s`) under that directory
//! as `shim-bench.tsv`, for the same figure-regeneration pipeline the
//! harness binaries feed via `ugraph-bench::report`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` renders as `sort/1024`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per iteration, individually; its return value
    /// is passed through [`black_box`] so it cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Distribution of one benchmark's per-iteration samples (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stats {
    min: f64,
    median: f64,
    p95: f64,
    mean: f64,
}

impl Stats {
    fn from_samples(samples: &[Duration]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(f64::total_cmp);
        Some(Stats {
            min: secs[0],
            median: percentile(&secs, 0.50),
            p95: percentile(&secs, 0.95),
            mean: secs.iter().sum::<f64>() / secs.len() as f64,
        })
    }
}

/// Linear-interpolation percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the shim has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let n = self.default_sample_size;
        self.run_one(&label, n, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, iterations: u64, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let Some(s) = Stats::from_samples(&bencher.samples) else {
            println!("bench {label:<56} (no samples)");
            return;
        };
        println!(
            "bench {label:<56} min {:>9} med {:>9} p95 {:>9}  ({iterations} iters)",
            fmt_secs(s.min),
            fmt_secs(s.median),
            fmt_secs(s.p95),
        );
        if let Some(dir) = std::env::var_os("CRITERION_TSV_DIR") {
            let dir = std::path::PathBuf::from(dir);
            let row = format!(
                "{label}\t{iterations}\t{}\t{}\t{}\t{}\n",
                s.min, s.median, s.p95, s.mean
            );
            let write = std::fs::create_dir_all(&dir).and_then(|()| {
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join("shim-bench.tsv"))
                    .and_then(|mut fh| fh.write_all(row.as_bytes()))
            });
            if let Err(e) = write {
                eprintln!("warning: cannot write bench TSV under {dir:?}: {e}");
            }
        }
    }
}

/// Collect benchmark functions into a runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_sample_per_iteration() {
        let mut b = Bencher {
            iterations: 7,
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| {
            calls += 1;
            calls
        });
        assert_eq!(b.samples.len(), 7);
        assert_eq!(calls, 8, "one warm-up call plus 7 timed iterations");
    }

    #[test]
    fn stats_order_statistics() {
        let samples: Vec<Duration> = [3, 1, 2, 5, 4]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .collect();
        let s = Stats::from_samples(&samples).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.p95 - 4.8).abs() < 1e-9, "p95 = {}", s.p95);
        assert_eq!(Stats::from_samples(&[]), None);
    }

    #[test]
    fn fmt_secs_units() {
        assert!(fmt_secs(0.0000005).ends_with("us"));
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert_eq!(fmt_secs(2.5), "2.500s");
    }

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim-self-test");
            g.sample_size(2)
                .measurement_time(Duration::from_millis(1))
                .bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| ran += 1));
            g.bench_with_input("with-input", &3u32, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert!(ran >= 2);
    }
}
