//! Planted-clique recovery: ground-truth evaluation of the miner.
//!
//! Real datasets show counts and runtimes; a planted workload shows
//! *correctness of discovery*: we embed reliable communities (cliques
//! with high internal edge probability) in a sea of low-confidence noise,
//! then check that α-maximal clique mining recovers exactly the plants —
//! at the right α — and rejects them once α exceeds their joint
//! probability.
//!
//! ```text
//! cargo run --release --example planted_recovery
//! ```

use uncertain_clique::gen::planted::{planted_cliques, PlantedParams};
use uncertain_clique::gen::rng::rng_from_seed;
use uncertain_clique::gen::EdgeProbModel;
use uncertain_clique::mule::{kcore, verify};
use uncertain_clique::prelude::*;

fn main() -> Result<(), MuleError> {
    let params = PlantedParams {
        n: 2000,
        num_plants: 8,
        plant_size: 6,
        plant_prob: 0.95,
        noise_edges: 6000,
        noise_model: EdgeProbModel::Uniform { lo: 0.0, hi: 0.6 },
    };
    let mut rng = rng_from_seed(2024);
    let inst = planted_cliques(params, &mut rng);
    println!(
        "planted instance: {} vertices, {} edges, {} plants of size {} (joint prob {:.3})",
        inst.graph.num_vertices(),
        inst.graph.num_edges(),
        inst.plants.len(),
        params.plant_size,
        inst.plant_clique_prob
    );

    // Mine at α just below the plant probability: every plant must appear
    // among the size-6 maximal cliques.
    let alpha = inst.plant_clique_prob * 0.9;
    let mined: Vec<_> = Query::new(&inst.graph)
        .alpha(alpha)
        .prepare()?
        .collect()?
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let big: Vec<_> = mined
        .iter()
        .filter(|c| c.len() >= params.plant_size)
        .collect();
    println!(
        "\nmined at α = {alpha:.3}: {} maximal cliques, {} of plant size+",
        mined.len(),
        big.len()
    );
    let mut recovered = 0;
    for plant in &inst.plants {
        if mined.iter().any(|c| c == plant) {
            recovered += 1;
        }
    }
    println!("recovered {recovered}/{} plants exactly", inst.plants.len());
    assert_eq!(recovered, inst.plants.len(), "all plants must be recovered");

    // Above the plants' joint probability the plants must NOT be maximal
    // (their subsets take over).
    let too_high = (inst.plant_clique_prob * 1.3).min(0.99);
    let strict: Vec<_> = Query::new(&inst.graph)
        .alpha(too_high)
        .prepare()?
        .collect()?
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let still_there = inst.plants.iter().filter(|p| strict.contains(p)).count();
    println!("at α = {too_high:.3}: {still_there} plants survive (expected 0)");
    assert_eq!(still_there, 0);

    // The expected-degree core pre-filter keeps every plant vertex while
    // discarding most of the noise — the future-work k-core idea earning
    // its keep.
    let kept = kcore::core_filter_for_cliques(&inst.graph, alpha, params.plant_size)?;
    let plant_vertices: usize = inst.plants.iter().map(|p| p.len()).sum();
    println!(
        "\ncore pre-filter: kept {} of {} vertices ({} of them plant members)",
        kept.len(),
        inst.graph.num_vertices(),
        inst.plants
            .iter()
            .flatten()
            .filter(|v| kept.contains(v))
            .count(),
    );
    assert!(
        inst.plants.iter().flatten().all(|v| kept.contains(v)),
        "the core filter may never drop a plant vertex"
    );
    assert!(
        kept.len() < inst.graph.num_vertices() / 2,
        "filter should discard most noise"
    );
    let _ = plant_vertices;

    // Independent verification of the mined output.
    let violations = verify::verify_sound(&inst.graph, alpha, &mined)?;
    assert!(violations.is_empty(), "{violations:?}");
    println!(
        "\nverification: {} cliques sound, non-redundant ✓",
        mined.len()
    );
    Ok(())
}
