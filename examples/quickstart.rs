//! Quickstart: build a small uncertain graph, enumerate its α-maximal
//! cliques, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uncertain_clique::mule::{sinks::CollectSink, Mule};
use uncertain_clique::prelude::*;

fn main() -> Result<(), GraphError> {
    // A little collaboration network: vertices are people, an edge means
    // "probably know each other", weighted by confidence.
    //
    //      0 --- 1          5
    //      | \   |          |
    //      |  \  |          6
    //      3 --- 2 ---------+
    //
    let mut b = GraphBuilder::new(7);
    b.add_edge(0, 1, 0.90)?;
    b.add_edge(1, 2, 0.90)?;
    b.add_edge(0, 2, 0.85)?;
    b.add_edge(0, 3, 0.80)?;
    b.add_edge(2, 3, 0.80)?;
    b.add_edge(2, 6, 0.60)?;
    b.add_edge(5, 6, 0.95)?;
    let g = b.build().with_name("quickstart");

    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Enumerate all 0.5-maximal cliques: vertex sets that form a fully
    // connected group with probability at least 1/2, and cannot be
    // extended without dropping below that bar.
    let alpha = 0.5;
    let mut mule = Mule::new(&g, alpha)?;
    let mut sink = CollectSink::new();
    mule.run(&mut sink);

    println!("\n{alpha}-maximal cliques:");
    for (clique, prob) in sink.into_pairs() {
        println!("  {clique:?}  (clique probability {prob:.4})");
    }

    // Raising the bar to 0.7 splits the looser groups apart.
    let strict = enumerate_maximal_cliques(&g, 0.7)?;
    println!("\n0.7-maximal cliques: {strict:?}");

    // How much work did the search do?
    let s = mule.stats();
    println!(
        "\nsearch tree: {} nodes, {} cliques, deepest clique {}",
        s.calls, s.emitted, s.max_depth
    );
    Ok(())
}
