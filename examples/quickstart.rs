//! Quickstart: build a small uncertain graph, prepare a mining session,
//! and query it several ways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uncertain_clique::prelude::*;

fn main() -> Result<(), MuleError> {
    // A little collaboration network: vertices are people, an edge means
    // "probably know each other", weighted by confidence.
    //
    //      0 --- 1          5
    //      | \   |          |
    //      |  \  |          6
    //      3 --- 2 ---------+
    //
    let mut b = GraphBuilder::new(7);
    b.add_edge(0, 1, 0.90)?;
    b.add_edge(1, 2, 0.90)?;
    b.add_edge(0, 2, 0.85)?;
    b.add_edge(0, 3, 0.80)?;
    b.add_edge(2, 3, 0.80)?;
    b.add_edge(2, 6, 0.60)?;
    b.add_edge(5, 6, 0.95)?;
    let g = b.build().with_name("quickstart");

    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Prepare once: all 0.5-maximal cliques — vertex sets that form a
    // fully connected group with probability at least 1/2, and cannot be
    // extended without dropping below that bar. The session reuses the
    // preprocessing across every query below.
    let alpha = 0.5;
    let mut session = Query::new(&g).alpha(alpha).prepare()?;

    println!("\n{alpha}-maximal cliques:");
    for (clique, prob) in session.collect()? {
        println!("  {clique:?}  (clique probability {prob:.4})");
    }

    // Same session: the two most reliable groups, no re-preprocessing.
    println!("\ntop-2 by probability:");
    for (clique, prob) in session.top_k(2)? {
        println!("  {clique:?}  ({prob:.4})");
    }

    // Raising the bar to 0.7 splits the looser groups apart — a new
    // threshold is a new query.
    let strict: Vec<_> = Query::new(&g)
        .alpha(0.7)
        .prepare()?
        .collect()?
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    println!("\n0.7-maximal cliques: {strict:?}");

    // How much work did the last search do?
    let s = session.stats();
    println!(
        "\nsearch tree: {} nodes, {} cliques, deepest clique {}",
        s.calls, s.emitted, s.max_depth
    );
    Ok(())
}
