//! Finding tight co-author groups in a DBLP-style collaboration network —
//! the paper's LARGE–MULE use case (Section 4.3).
//!
//! The DBLP uncertain graph connects authors with probability
//! `1 − e^{−c/10}` for `c` co-authored papers. Most maximal cliques are
//! tiny (pairs who wrote one paper); the interesting structures are the
//! *large* reliable groups. Enumerating everything and filtering wastes
//! hours (the paper: 76797 s); a size-bounded query prunes up front
//! (paper: 32 s at t = 3). With the session API, the size bound is just
//! builder state: `Query::new(&g).alpha(α).min_size(t)`.
//!
//! ```text
//! cargo run --release --example coauthor_groups
//! ```

use std::time::Instant;
use uncertain_clique::gen::datasets;
use uncertain_clique::mule::sinks::{CountSink, SizeHistogramSink};
use uncertain_clique::prelude::*;

fn main() -> Result<(), MuleError> {
    // 5% of DBLP scale keeps the example snappy; crank to 1.0 to reproduce
    // the paper-scale behaviour.
    let g = datasets::by_name("DBLP10")
        .expect("registry has DBLP")
        .build_scaled(42, 0.05);
    println!(
        "DBLP stand-in: {} authors, {} co-authorship edges",
        g.num_vertices(),
        g.num_edges()
    );

    let alpha = 0.3; // groups that co-exist with ≥30% probability

    // Baseline: one session enumerates everything; any sink can consume
    // the stream, here a size histogram.
    let t0 = Instant::now();
    let mut session = Query::new(&g).alpha(alpha).prepare()?;
    let mut hist = SizeHistogramSink::new();
    session.stream(&mut hist)?;
    let full_time = t0.elapsed();
    println!(
        "\nfull enumeration: {} maximal groups in {:.2?}",
        hist.total(),
        full_time
    );
    println!("size histogram (size: count):");
    for (size, count) in hist.histogram().iter().enumerate() {
        if *count > 0 {
            println!("  {size:>3}: {count}");
        }
    }

    // Size-bounded queries at increasing thresholds: each run gets
    // cheaper (the `(t−1)·α` core filter, the Modani–Dey peel, and the
    // Algorithm 6 search bound all engage through one builder knob).
    println!("\nmin-size sweeps:");
    println!("  t   groups   time      search-nodes   vs-full-output");
    for t in [3usize, 4, 5] {
        let t0 = Instant::now();
        let mut bounded = Query::new(&g).alpha(alpha).min_size(t).prepare()?;
        let mut sink = CountSink::new();
        bounded.stream(&mut sink)?;
        let elapsed = t0.elapsed();
        let expected = hist.count_at_least(t);
        assert_eq!(
            sink.count, expected,
            "the size-bounded query must equal the size-filtered full output"
        );
        println!(
            "  {t}   {:>6}   {:>8.2?}   {:>12}   matches ✓",
            sink.count,
            elapsed,
            bounded.stats().calls
        );
    }

    // The five most reliable larger groups — same full session, now
    // serving a top-k query (no preprocessing re-run).
    let top = session.top_k(200)?;
    println!("\nmost reliable groups with ≥3 authors:");
    for (c, p) in top.iter().filter(|(c, _)| c.len() >= 3).take(5) {
        println!("  authors {c:?}: probability {p:.3}");
    }
    Ok(())
}
