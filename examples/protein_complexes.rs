//! Protein-complex mining: the paper's motivating bioinformatics use case.
//!
//! Protein–protein interaction (PPI) networks are inherently uncertain —
//! high-throughput assays have substantial false-positive/negative rates,
//! so databases like STRING attach a confidence score to every
//! interaction. A *protein complex* shows up as a set of proteins that is
//! fully interconnected *with high probability*: exactly an α-maximal
//! clique.
//!
//! This example builds the Fruit-Fly PPI stand-in (same scale and score
//! distribution as the paper's STRING-derived network), mines complexes at
//! a range of confidence thresholds, and validates one complex's
//! probability by Monte-Carlo sampling of possible worlds (Observation 1).
//!
//! ```text
//! cargo run --release --example protein_complexes
//! ```

use uncertain_clique::core::{clique, sample};
use uncertain_clique::gen::datasets;
use uncertain_clique::prelude::*;

fn main() -> Result<(), MuleError> {
    let g = datasets::by_name("Fruit-Fly")
        .expect("registry has the PPI dataset")
        .build(42);
    let stats = GraphStats::compute(&g);
    println!(
        "PPI stand-in: {} proteins, {} scored interactions, mean confidence {:.2}",
        stats.n, stats.m, stats.mean_prob
    );

    // Sweep the confidence threshold: higher α keeps only complexes whose
    // *joint* existence is well supported. One prepared session per
    // threshold.
    println!("\n alpha   #complexes   largest");
    let mut strong: Vec<(Vec<VertexId>, f64)> = Vec::new();
    for alpha in [0.05, 0.25, 0.5, 0.75] {
        let pairs = Query::new(&g).alpha(alpha).prepare()?.collect()?;
        let largest = pairs.iter().map(|(c, _)| c.len()).max().unwrap_or(0);
        println!("{alpha:>6}   {:>10}   {largest:>7}", pairs.len());
        if alpha == 0.5 {
            strong = pairs;
        }
    }

    // Report the highest-probability non-trivial complexes at α = 0.5.
    strong.retain(|(c, _)| c.len() >= 3);
    strong.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nmost reliable complexes (≥3 proteins) at alpha = 0.5:");
    for (c, p) in strong.iter().take(5) {
        println!("  proteins {c:?}: joint interaction probability {p:.4}");
    }

    // Validate the top complex against the possible-world semantics: the
    // closed-form product (Observation 1) must match the sampled frequency.
    if let Some((complex, exact)) = strong.first() {
        let mut rng = uncertain_clique::gen::rng::rng_from_seed(7);
        let est = sample::estimate_clique_probability(&g, complex, 200_000, &mut rng);
        println!("\nMonte-Carlo check on {complex:?}: exact {exact:.4}, sampled {est:.4}");
        assert!(
            (est - exact).abs() < 0.01,
            "sampling must agree with the product form"
        );
        assert!(clique::is_alpha_maximal(&g, complex, 0.5));
        println!("possible-world sampling agrees with the closed form ✓");
    }
    Ok(())
}
