//! Exploring how the threshold α shapes the mined structure, on a noisy
//! peer-to-peer topology — plus the parallel session and graph I/O.
//!
//! Mirrors the paper's Figures 2–3 in miniature: as α rises, both the
//! number of α-maximal cliques and the cost of finding them drop sharply,
//! because high thresholds let the search prune aggressively.
//!
//! ```text
//! cargo run --release --example threshold_exploration
//! ```

use std::time::Instant;
use uncertain_clique::gen::datasets;
use uncertain_clique::io;
use uncertain_clique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = datasets::by_name("p2p-Gnutella08")
        .expect("registry has Gnutella")
        .build(42);
    println!(
        "Gnutella stand-in: {} peers, {} uncertain links",
        g.num_vertices(),
        g.num_edges()
    );

    // Sweep α across four orders of magnitude. Each threshold is its own
    // prepared session; the prune report shows how much of the graph the
    // threshold already discards before the search starts.
    println!("\n   alpha    cliques      time   pruned-graph-edges");
    for alpha in [0.0001, 0.001, 0.01, 0.1, 0.5, 0.9] {
        let t0 = Instant::now();
        let mut session = Query::new(&g).alpha(alpha).prepare()?;
        let count = session.count()?;
        println!(
            "{alpha:>8}   {count:>8}   {:>7.2?}   {:>8}",
            t0.elapsed(),
            session.report().final_edges,
        );
    }

    // The same enumeration, fanned out across CPU cores by builder state
    // alone: identical output.
    let alpha = 0.001;
    let mut seq_session = Query::new(&g).alpha(alpha).prepare()?;
    let seq = seq_session.collect()?;
    let t0 = Instant::now();
    let par = Query::new(&g)
        .alpha(alpha)
        .threads_auto()
        .prepare()?
        .collect()?;
    println!(
        "\nparallel enumeration: {} cliques in {:.2?} (sequential found {})",
        par.len(),
        t0.elapsed(),
        seq.len()
    );
    assert_eq!(par, seq, "parallel must equal sequential");

    // Round-trip the graph through the text format — the interchange path
    // for bringing your own uncertain data.
    let mut buf = Vec::new();
    io::write_prob_edgelist(&g, &mut buf)?;
    let loaded = io::read_prob_edgelist(&buf[..], uncertain_clique::core::DuplicatePolicy::Error)?;
    assert_eq!(loaded.graph.num_edges(), g.num_edges());
    println!(
        "round-tripped {} edges through the text format ({} bytes) ✓",
        g.num_edges(),
        buf.len()
    );
    Ok(())
}
