//! # uncertain-clique — mining maximal cliques from uncertain graphs
//!
//! Umbrella facade over the workspace crates implementing *Mukherjee, Xu,
//! Tirthapura, "Mining Maximal Cliques from an Uncertain Graph"* (ICDE
//! 2015):
//!
//! * [`core`] — the uncertain-graph substrate (storage, probabilities,
//!   possible worlds);
//! * [`mule`] — the MULE / LARGE–MULE enumeration algorithms, baselines and
//!   extensions;
//! * [`gen`] — workload generators and the paper's dataset stand-ins;
//! * [`io`] — text and binary graph formats.
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_clique::prelude::*;
//!
//! // Build a small uncertain graph.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0.9).unwrap();
//! b.add_edge(1, 2, 0.9).unwrap();
//! b.add_edge(0, 2, 0.9).unwrap();
//! b.add_edge(2, 3, 0.6).unwrap();
//! let g = b.build();
//!
//! // Enumerate all 0.5-maximal cliques.
//! let cliques = enumerate_maximal_cliques(&g, 0.5).unwrap();
//! assert!(cliques.contains(&vec![0, 1, 2])); // 0.9³ = 0.729 ≥ 0.5
//! assert!(cliques.contains(&vec![2, 3]));    // 0.6 ≥ 0.5
//! ```

pub use mule;
pub use ugraph_core as core;
pub use ugraph_gen as gen;
pub use ugraph_io as io;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mule::{
        enumerate_maximal_cliques, sinks::CollectSink, sinks::CountSink, CliqueSink, LargeMule,
        Mule, MuleConfig,
    };
    pub use ugraph_core::{GraphBuilder, GraphError, GraphStats, Prob, UncertainGraph, VertexId};
}
