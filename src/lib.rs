//! # uncertain-clique — mining maximal cliques from uncertain graphs
//!
//! Umbrella facade over the workspace crates implementing *Mukherjee, Xu,
//! Tirthapura, "Mining Maximal Cliques from an Uncertain Graph"* (ICDE
//! 2015):
//!
//! * [`core`] — the uncertain-graph substrate (storage, probabilities,
//!   possible worlds);
//! * [`mule`] — the MULE / LARGE–MULE enumeration algorithms, baselines and
//!   extensions;
//! * [`gen`] — workload generators and the paper's dataset stand-ins;
//! * [`io`] — text and binary graph formats.
//!
//! ## Quickstart
//!
//! The front door is the [`mule::Query`] builder: validate and
//! preprocess once ([`mule::Query::prepare`]), then answer any number
//! of queries from the reusable [`mule::Prepared`] session.
//!
//! ```
//! use uncertain_clique::prelude::*;
//!
//! # fn main() -> Result<(), MuleError> {
//! // Build a small uncertain graph.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0.9)?;
//! b.add_edge(1, 2, 0.9)?;
//! b.add_edge(0, 2, 0.9)?;
//! b.add_edge(2, 3, 0.6)?;
//! let g = b.build();
//!
//! // One prepared session answers count, collect, and top-k.
//! let mut session = Query::new(&g).alpha(0.5).prepare()?;
//! assert_eq!(session.count()?, 2);
//! let cliques: Vec<_> = session.collect()?.into_iter().map(|(c, _)| c).collect();
//! assert!(cliques.contains(&vec![0, 1, 2])); // 0.9³ = 0.729 ≥ 0.5
//! assert!(cliques.contains(&vec![2, 3]));    // 0.6 ≥ 0.5
//! assert_eq!(session.top_k(1)?[0].0, vec![0, 1, 2]);
//! # Ok(())
//! # }
//! ```

pub use mule;
pub use ugraph_core as core;
pub use ugraph_gen as gen;
pub use ugraph_io as io;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mule::{
        enumerate_maximal_cliques, sinks::CollectSink, sinks::CountSink, CliqueSink, Engine,
        IndexMode, LargeMule, Mule, MuleConfig, MuleError, Prepared, Query,
    };
    pub use ugraph_core::{GraphBuilder, GraphError, GraphStats, Prob, UncertainGraph, VertexId};
}
