//! The incremental-maintenance contract (tentpole of the dynamic-graph
//! PR): folding a [`GraphDelta`] into a live artifact with
//! `Prepared::apply` / `Base::apply` must be **byte-identical** to a
//! fresh `prepare()` / `prepare_base()` of the mutated graph — same
//! component order, same id maps, same probability bits, same prepare
//! report, same serialized catalog bytes. The incremental path is an
//! optimization, never an approximation.
//!
//! The battery sweeps random graphs × random mutation batches × α ×
//! `min_size` × engine × index mode × thread counts, plus deterministic
//! component-join (bridge insert) and component-split (bridge delete,
//! re-weight below α) scenarios, empty / inverse / no-op batches,
//! below-threshold inserts, the representability errors, the sharded
//! precondition errors, reopen-with-pending-deltas, and compaction.

use mule::{catalog, Engine, GraphDelta, IndexMode, MuleError, Prepared, Query};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use ugraph_core::builder::from_edges;
use ugraph_core::UncertainGraph;

/// Fixed palette so α thresholds stride across real mass boundaries.
const PALETTE: [f64; 6] = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];

fn random_graph(n: usize, density: f64, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                edges.push((u, v, PALETTE[rng.gen_range(0..PALETTE.len())]));
            }
        }
    }
    from_edges(n, &edges).unwrap()
}

type EdgeMap = BTreeMap<(u32, u32), f64>;

fn edge_map(g: &UncertainGraph) -> EdgeMap {
    let n = g.num_vertices() as u32;
    let mut m = EdgeMap::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if let Some(p) = g.edge_prob_raw(u, v) {
                m.insert((u, v), p);
            }
        }
    }
    m
}

fn build(n: usize, m: &EdgeMap) -> UncertainGraph {
    let edges: Vec<(u32, u32, f64)> = m.iter().map(|(&(u, v), &p)| (u, v, p)).collect();
    from_edges(n, &edges).unwrap()
}

/// Generate a batch the artifact is guaranteed to accept (modulo the
/// sharded precondition), together with the concretely mutated graph
/// the batch denotes. Inserts pick pairs absent from the *whole*
/// original graph (so the concrete mutation is unambiguous); deletes
/// and re-weights pick edges currently addressable by the sequential
/// ledger (visible at the threshold, or inserted earlier in the batch).
fn random_delta(
    g: &UncertainGraph,
    threshold: f64,
    num_ops: usize,
    seed: u64,
) -> (GraphDelta, UncertainGraph) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = g.num_vertices() as u32;
    let mut concrete = edge_map(g);
    let mut addressable: EdgeMap = concrete
        .iter()
        .filter(|(_, &p)| p >= threshold)
        .map(|(&k, &p)| (k, p))
        .collect();
    let mut delta = GraphDelta::new();
    for _ in 0..num_ops {
        match rng.gen_range(0..3u8) {
            0 if n >= 2 => {
                // Insert: find an absent pair (bounded probes).
                for _ in 0..16 {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    let key = (u.min(v), u.max(v));
                    if u != v && !concrete.contains_key(&key) {
                        let p = PALETTE[rng.gen_range(0..PALETTE.len())];
                        delta = delta.insert(key.0, key.1, p);
                        concrete.insert(key, p);
                        addressable.insert(key, p);
                        break;
                    }
                }
            }
            1 if !addressable.is_empty() => {
                let i = rng.gen_range(0..addressable.len());
                let key = *addressable.keys().nth(i).unwrap();
                delta = delta.delete(key.0, key.1);
                concrete.remove(&key);
                addressable.remove(&key);
            }
            2 if !addressable.is_empty() => {
                let i = rng.gen_range(0..addressable.len());
                let key = *addressable.keys().nth(i).unwrap();
                let p = PALETTE[rng.gen_range(0..PALETTE.len())];
                delta = delta.set_prob(key.0, key.1, p);
                concrete.insert(key, p);
                addressable.insert(key, p);
            }
            _ => {}
        }
    }
    (delta, build(g.num_vertices(), &concrete))
}

/// Demand full observable identity: report, serialized catalog bytes,
/// clique stream (order + probability bits), enumeration stats.
fn assert_sessions_identical(got: &mut Prepared, want: &mut Prepared, what: &str) {
    assert_eq!(got.report(), want.report(), "{what}: report");
    assert_eq!(
        got.to_catalog_bytes(),
        want.to_catalog_bytes(),
        "{what}: catalog bytes"
    );
    let g = got.collect().unwrap();
    let w = want.collect().unwrap();
    assert_eq!(g.len(), w.len(), "{what}: clique count");
    for (i, ((gc, gp), (wc, wp))) in g.iter().zip(&w).enumerate() {
        assert_eq!(gc, wc, "{what}: clique {i}");
        assert_eq!(gp.to_bits(), wp.to_bits(), "{what}: prob {i} bits");
    }
    assert_eq!(got.stats(), want.stats(), "{what}: stats");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Prepared::apply` ≡ fresh prepare of the mutated graph. When the
    /// sharded precondition fails, the typed error must leave the
    /// session byte-unchanged. With `min_size ≤ 1` the precondition
    /// holds automatically, so apply must succeed.
    #[test]
    fn prepared_apply_is_byte_identical_to_fresh_prepare(
        n in 4usize..26,
        density in 0.15f64..0.6,
        seed in 0u64..1_000_000,
        alpha_i in 0usize..4,
        min_size in 0usize..4,
        ops in 1usize..9,
        noip in any::<bool>(),
        mode_i in 0usize..3,
        two_threads in any::<bool>(),
    ) {
        let g = random_graph(n, density, seed);
        let alpha = [0.1, 0.3, 0.5, 0.7][alpha_i];
        let engine = if noip { Engine::Noip } else { Engine::Auto };
        let mode = [IndexMode::Auto, IndexMode::Always, IndexMode::Never][mode_i];
        let threads = if two_threads { 2 } else { 1 };
        let what = format!("n={n} density={density:.2} seed={seed} α={alpha} t={min_size} ops={ops}");
        let (delta, mutated) = random_delta(&g, alpha, ops, seed.wrapping_add(0x9e37));
        let mut session = Query::new(&g)
            .alpha(alpha)
            .min_size(min_size)
            .index_mode(mode)
            .engine(engine)
            .threads(threads)
            .prepare()
            .unwrap();
        let before = session.to_catalog_bytes();
        match session.apply(&delta) {
            Ok(()) => {
                let mut fresh = Query::new(&mutated)
                    .alpha(alpha)
                    .min_size(min_size)
                    .index_mode(mode)
                    .engine(engine)
                    .threads(threads)
                    .prepare()
                    .unwrap();
                assert_sessions_identical(&mut session, &mut fresh, &what);
            }
            Err(MuleError::Delta(_)) => {
                prop_assert!(min_size >= 2, "{what}: precondition only fails for t ≥ 2");
                prop_assert_eq!(session.to_catalog_bytes(), before,
                    "{}: rejected apply must not mutate", what);
            }
            Err(e) => prop_assert!(false, "{}: unexpected error {e}", what),
        }
    }

    /// `Base::apply` has no precondition: it must always succeed on a
    /// representable batch and match a fresh `prepare_base` of the
    /// mutated graph byte-for-byte, and the refined per-α views derived
    /// afterwards must match fresh prepares of the mutated graph too.
    #[test]
    fn base_apply_is_byte_identical_to_fresh_base(
        n in 4usize..26,
        density in 0.15f64..0.6,
        seed in 0u64..1_000_000,
        floor_i in 0usize..3,
        min_size in 0usize..4,
        ops in 1usize..9,
    ) {
        let g = random_graph(n, density, seed);
        let floor = [0.0, 0.2, 0.4][floor_i];
        let what = format!("n={n} density={density:.2} seed={seed} floor={floor} t={min_size}");
        let (delta, mutated) = random_delta(&g, floor, ops, seed.wrapping_add(0x51ed));
        let mut base = Query::new(&g)
            .alpha_floor(floor)
            .min_size(min_size)
            .prepare_base()
            .unwrap();
        base.apply(&delta).unwrap_or_else(|e| panic!("{what}: base apply: {e}"));
        let fresh_base = Query::new(&mutated)
            .alpha_floor(floor)
            .min_size(min_size)
            .prepare_base()
            .unwrap();
        prop_assert_eq!(base.to_catalog_bytes(), fresh_base.to_catalog_bytes(),
            "{}: base catalog bytes", what);
        for alpha in [0.3, 0.7].into_iter().filter(|a| *a >= floor) {
            let mut refined = base.refine(alpha).unwrap();
            let mut fresh = Query::new(&mutated)
                .alpha(alpha)
                .min_size(min_size)
                .prepare()
                .unwrap();
            assert_sessions_identical(&mut refined, &mut fresh,
                &format!("{what} refined α={alpha}"));
        }
    }
}

/// A bridge insert must *join* two prepared components; deleting it (or
/// re-weighting it below α) must *split* them again — exactly as the
/// fresh pipeline would discover, including component order.
#[test]
fn bridge_mutations_join_and_split_components() {
    // Two solid triangles, no bridge.
    let g = from_edges(
        6,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (3, 4, 0.9),
            (4, 5, 0.9),
            (3, 5, 0.9),
        ],
    )
    .unwrap();
    let mut session = Query::new(&g).alpha(0.5).prepare().unwrap();
    assert_eq!(session.report().components_kept, 2);

    // Join: insert the bridge.
    session.apply(&GraphDelta::new().insert(2, 3, 0.8)).unwrap();
    assert_eq!(session.report().components_kept, 1, "bridge joins");
    let mut joined = edge_map(&g);
    joined.insert((2, 3), 0.8);
    let mut fresh = Query::new(&build(6, &joined)).alpha(0.5).prepare().unwrap();
    assert_sessions_identical(&mut session, &mut fresh, "join");

    // Split by deleting the bridge.
    let mut split = session.clone_for_split();
    split.apply(&GraphDelta::new().delete(2, 3)).unwrap();
    assert_eq!(split.report().components_kept, 2, "delete splits");
    let mut fresh_split = Query::new(&g).alpha(0.5).prepare().unwrap();
    assert_sessions_identical(&mut split, &mut fresh_split, "split by delete");

    // Split by re-weighting the bridge below α: the edge survives in
    // the graph but dies at the α-prune, exactly like a fresh prepare.
    session
        .apply(&GraphDelta::new().set_prob(2, 3, 0.2))
        .unwrap();
    assert_eq!(session.report().components_kept, 2, "re-weight splits");
    joined.insert((2, 3), 0.2);
    let mut fresh_low = Query::new(&build(6, &joined)).alpha(0.5).prepare().unwrap();
    assert_sessions_identical(&mut session, &mut fresh_low, "split by set_prob");
}

/// Helper: sessions aren't `Clone`, so "fork" one through its catalog
/// bytes (pinned byte-identical by `tests/catalog_roundtrip.rs`).
trait CloneForSplit {
    fn clone_for_split(&self) -> Prepared;
}
impl CloneForSplit for Prepared {
    fn clone_for_split(&self) -> Prepared {
        Query::open_bytes(self.to_catalog_bytes()).unwrap()
    }
}

/// Empty, inverse, and value-preserving batches are exact no-ops on the
/// serialized artifact.
#[test]
fn degenerate_batches_are_byte_noops() {
    let g = random_graph(14, 0.4, 21);
    let mut session = Query::new(&g).alpha(0.3).prepare().unwrap();
    let before = session.to_catalog_bytes();

    session.apply(&GraphDelta::new()).unwrap();
    assert_eq!(session.to_catalog_bytes(), before, "empty batch");

    // Insert then delete the same fresh edge: net no-op, including the
    // report's edge totals.
    let absent = {
        let m = edge_map(&g);
        (0..14u32)
            .flat_map(|u| ((u + 1)..14).map(move |v| (u, v)))
            .find(|k| !m.contains_key(k))
            .unwrap()
    };
    session
        .apply(
            &GraphDelta::new()
                .insert(absent.0, absent.1, 0.8)
                .delete(absent.0, absent.1),
        )
        .unwrap();
    assert_eq!(session.to_catalog_bytes(), before, "insert+delete");

    // Re-weighting an edge to its current value is a structural no-op.
    let (&(u, v), &p) = edge_map(&g)
        .iter()
        .find(|(_, &p)| p >= 0.3)
        .expect("some visible edge");
    session.apply(&GraphDelta::new().set_prob(u, v, p)).unwrap();
    assert_eq!(session.to_catalog_bytes(), before, "same-value set_prob");

    // A batch and its inverse compose to the identity.
    session
        .apply(&GraphDelta::new().delete(u, v).insert(u, v, p))
        .unwrap();
    assert_eq!(session.to_catalog_bytes(), before, "delete+re-insert");
}

/// An insert below α is legal: it counts toward the mutated graph's
/// edge total but is not materialized — and it stays addressable within
/// the batch (it can be re-weighted above α, or deleted again).
#[test]
fn below_threshold_inserts_count_but_do_not_materialize() {
    let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)]).unwrap();
    let mut session = Query::new(&g).alpha(0.5).prepare().unwrap();

    session.apply(&GraphDelta::new().insert(2, 3, 0.2)).unwrap();
    assert_eq!(session.report().original_edges, 4, "edge counted");
    assert_eq!(session.report().alpha_pruned_edges, 1, "edge pruned");
    let mut fresh =
        Query::new(&from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.2)]).unwrap())
            .alpha(0.5)
            .prepare()
            .unwrap();
    assert_sessions_identical(&mut session, &mut fresh, "below-α insert");

    // In-batch addressability: lift it above α in the same batch …
    let mut lifted = Query::new(&g).alpha(0.5).prepare().unwrap();
    lifted
        .apply(&GraphDelta::new().insert(2, 3, 0.2).set_prob(2, 3, 0.8))
        .unwrap();
    let mut fresh_lifted =
        Query::new(&from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.8)]).unwrap())
            .alpha(0.5)
            .prepare()
            .unwrap();
    assert_sessions_identical(&mut lifted, &mut fresh_lifted, "insert+lift");

    // … or delete it again: net no-op.
    let mut gone = Query::new(&g).alpha(0.5).prepare().unwrap();
    let before = gone.to_catalog_bytes();
    gone.apply(&GraphDelta::new().insert(2, 3, 0.2).delete(2, 3))
        .unwrap();
    assert_eq!(gone.to_catalog_bytes(), before, "insert below α + delete");
}

/// The representability contract: ops referencing state the artifact
/// cannot see are typed errors, and a failed apply leaves the artifact
/// byte-unchanged (validation precedes all mutation).
#[test]
fn unrepresentable_ops_are_typed_errors_and_leave_no_trace() {
    // Edge (2,3) exists below α: invisible to the α = 0.5 session.
    let g = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.2)]).unwrap();
    let mut session = Query::new(&g).alpha(0.5).prepare().unwrap();
    let before = session.to_catalog_bytes();

    let bad: Vec<(GraphDelta, &str)> = vec![
        (GraphDelta::new().insert(0, 1, 0.7), "insert visible edge"),
        (GraphDelta::new().delete(2, 3), "delete invisible edge"),
        (GraphDelta::new().set_prob(2, 3, 0.9), "set invisible edge"),
        (GraphDelta::new().delete(0, 3), "delete absent edge"),
        (GraphDelta::new().insert(1, 1, 0.5), "self loop"),
        (GraphDelta::new().insert(0, 9, 0.5), "endpoint out of range"),
        (GraphDelta::new().insert(0, 3, 0.0), "zero probability"),
        (GraphDelta::new().insert(0, 3, 1.5), "probability above one"),
        (GraphDelta::new().insert(0, 3, f64::NAN), "NaN probability"),
        (
            GraphDelta::new().delete(0, 1).delete(0, 1),
            "double delete (sequential semantics)",
        ),
        (
            GraphDelta::new().insert(0, 3, 0.9).insert(0, 3, 0.9),
            "double insert (sequential semantics)",
        ),
        (
            // A valid op before an invalid one must not commit.
            GraphDelta::new().insert(0, 3, 0.9).delete(1, 3),
            "valid prefix before invalid op",
        ),
    ];
    for (delta, what) in bad {
        match session.apply(&delta) {
            Err(MuleError::Delta(msg)) => {
                assert!(!msg.is_empty(), "{what}: diagnostic message");
            }
            other => panic!("{what}: expected MuleError::Delta, got {other:?}"),
        }
        assert_eq!(
            session.to_catalog_bytes(),
            before,
            "{what}: failed apply must leave the session unchanged"
        );
    }
}

/// Sharded instances that already lost vertices/components to the
/// `min_size` filters cannot reconstruct the mutated graph; `apply`
/// must say so with a typed error — and a `Base` over the same graph
/// (which keeps everything at the floor) must handle the same batch.
#[test]
fn lossy_instances_reject_apply_with_a_typed_error() {
    // Triangle + edge pair: at t = 3 the pair is dropped as too small,
    // so the instance no longer covers vertices 3 and 4.
    let g = from_edges(5, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (3, 4, 0.9)]).unwrap();
    let mut session = Query::new(&g).alpha(0.5).min_size(3).prepare().unwrap();
    assert!(session.report().components_dropped_small > 0);
    let before = session.to_catalog_bytes();
    let delta = GraphDelta::new().insert(2, 3, 0.9);
    match session.apply(&delta) {
        Err(MuleError::Delta(msg)) => {
            assert!(
                msg.contains("re-prepare") || msg.contains("Base"),
                "error should direct the caller to a recovery path: {msg}"
            );
        }
        other => panic!("expected MuleError::Delta, got {other:?}"),
    }
    assert_eq!(session.to_catalog_bytes(), before);

    // Vertex dropped by the expected-degree core filter (stage 2): a
    // pendant with expected degree 0.5 < (t−1)·α = 0.8 at t = 3. The
    // instance is whole-graph but lossy, so apply still refuses.
    let pendant = from_edges(4, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.5)]).unwrap();
    let mut lossy = Query::new(&pendant)
        .alpha(0.4)
        .min_size(3)
        .prepare()
        .unwrap();
    assert!(matches!(
        lossy.apply(&GraphDelta::new().insert(0, 3, 0.9)),
        Err(MuleError::Delta(_))
    ));

    // The documented recovery path: a base needs no precondition.
    let mut base = Query::new(&g).min_size(3).prepare_base().unwrap();
    base.apply(&delta).unwrap();
    let mut joined = edge_map(&g);
    joined.insert((2, 3), 0.9);
    let fresh_base = Query::new(&build(5, &joined))
        .min_size(3)
        .prepare_base()
        .unwrap();
    assert_eq!(base.to_catalog_bytes(), fresh_base.to_catalog_bytes());
    let mut refined = base.refine(0.5).unwrap();
    let mut fresh = Query::new(&build(5, &joined))
        .alpha(0.5)
        .min_size(3)
        .prepare()
        .unwrap();
    assert_sessions_identical(&mut refined, &mut fresh, "base recovery path");
}

/// Catalog persistence: deltas appended to a saved catalog replay on
/// reopen (both flavors), `pending_deltas` counts them, and compaction
/// folds them in — leaving exactly the bytes a fresh save of a fresh
/// prepare of the mutated graph would write.
#[test]
fn reopen_replays_pending_deltas_and_compaction_is_byte_exact() {
    let dir = std::env::temp_dir().join(format!("ugq-delta-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = random_graph(16, 0.35, 77);

    // Prepared-instance catalog.
    let path = dir.join("inst.ugq");
    let session = Query::new(&g).alpha(0.3).prepare().unwrap();
    session.save(&path).unwrap();
    let (d1, after1) = random_delta(&g, 0.3, 5, 1001);
    let (d2, after2) = random_delta(&after1, 0.3, 5, 1002);
    assert_eq!(catalog::append_delta(&path, &d1).unwrap(), 1);
    assert_eq!(catalog::append_delta(&path, &d2).unwrap(), 2);
    assert_eq!(catalog::pending_deltas(&path).unwrap(), 2);
    let mut reopened = Query::open(&path).unwrap();
    let mut fresh = Query::new(&after2).alpha(0.3).prepare().unwrap();
    assert_sessions_identical(&mut reopened, &mut fresh, "reopen with pending deltas");

    // Compaction folds the deltas in and byte-matches a fresh save.
    assert_eq!(catalog::compact(&path).unwrap(), 2);
    assert_eq!(catalog::pending_deltas(&path).unwrap(), 0);
    let fresh_path = dir.join("fresh.ugq");
    fresh.save(&fresh_path).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&fresh_path).unwrap(),
        "compacted catalog must be byte-identical to a fresh save"
    );
    // Compacting a clean catalog is a no-op.
    let clean = std::fs::read(&path).unwrap();
    assert_eq!(catalog::compact(&path).unwrap(), 0);
    assert_eq!(std::fs::read(&path).unwrap(), clean);

    // Base catalog: same contract through `open_base`.
    let bpath = dir.join("base.ugq");
    let base = Query::new(&g).alpha_floor(0.2).prepare_base().unwrap();
    base.save(&bpath).unwrap();
    let (bd, bafter) = random_delta(&g, 0.2, 5, 2001);
    assert_eq!(catalog::append_delta(&bpath, &bd).unwrap(), 1);
    let reopened_base = Query::open_base(&bpath).unwrap();
    let fresh_base = Query::new(&bafter).alpha_floor(0.2).prepare_base().unwrap();
    assert_eq!(
        reopened_base.to_catalog_bytes(),
        fresh_base.to_catalog_bytes(),
        "reopened base with pending delta"
    );
    assert_eq!(catalog::compact(&bpath).unwrap(), 1);
    let fresh_bpath = dir.join("fresh-base.ugq");
    fresh_base.save(&fresh_bpath).unwrap();
    assert_eq!(
        std::fs::read(&bpath).unwrap(),
        std::fs::read(&fresh_bpath).unwrap(),
        "compacted base catalog"
    );

    // A rejected append (unrepresentable batch) must leave the file
    // untouched — validation happens before the write.
    let before = std::fs::read(&path).unwrap();
    assert!(matches!(
        catalog::append_delta(&path, &GraphDelta::new().delete(0, 0)),
        Err(MuleError::Delta(_))
    ));
    assert_eq!(std::fs::read(&path).unwrap(), before);

    let _ = std::fs::remove_dir_all(&dir);
}

/// `apply` never re-enters the prepare pipeline: the process-wide
/// counter moves only for `prepare` / `prepare_base`.
#[test]
fn apply_does_not_rerun_the_pipeline() {
    let g = random_graph(18, 0.4, 5);
    let mut session = Query::new(&g).alpha(0.3).prepare().unwrap();
    let mut base = Query::new(&g).prepare_base().unwrap();
    let before = mule::prepare::pipeline_invocations();
    let (delta, _) = random_delta(&g, 0.3, 4, 9);
    session.apply(&delta).unwrap();
    let (bdelta, _) = random_delta(&g, 0.0, 4, 10);
    base.apply(&bdelta).unwrap();
    assert_eq!(
        mule::prepare::pipeline_invocations(),
        before,
        "incremental apply must not re-enter the prepare pipeline"
    );
}
