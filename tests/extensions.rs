//! Integration tests for the extension modules (beyond the paper's core):
//! expected-degree cores, sampled-world analysis, the Zou et al.
//! comparator, the verifier, and planted-instance recovery — exercised
//! together the way the examples combine them.

use mule::{kcore, verify, worlds, zou_topk};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph};
use ugraph_gen::planted::{planted_cliques, PlantedParams};
use ugraph_gen::rng::rng_from_seed;
use ugraph_gen::EdgeProbModel;

fn random_graph(n: usize, density: f64, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

/// The core pre-filter composed with MULE: restricting enumeration to the
/// filtered vertex set must lose exactly the cliques smaller than t.
#[test]
fn kcore_filter_then_enumerate_pipeline() {
    for seed in 0..5 {
        let g = random_graph(30, 0.4, seed);
        let (alpha, t) = (0.2, 3);
        let kept = kcore::core_filter_for_cliques(&g, alpha, t).unwrap();
        let (sub, map) = ugraph_core::subgraph::induced_subgraph(&g, &kept).unwrap();
        let mut translated: Vec<Vec<u32>> = mule::enumerate_maximal_cliques(&sub, alpha)
            .unwrap()
            .into_iter()
            .filter(|c| c.len() >= t)
            .map(|c| {
                let mut orig: Vec<u32> = c.iter().map(|&v| map[v as usize]).collect();
                orig.sort_unstable();
                orig
            })
            .collect();
        translated.sort();
        let expected: Vec<Vec<u32>> = mule::enumerate_maximal_cliques(&g, alpha)
            .unwrap()
            .into_iter()
            .filter(|c| c.len() >= t)
            .collect();
        // Every size-≥t clique of G survives in the filtered subgraph. The
        // filtered run may also report cliques that are *locally* maximal
        // in the subgraph but extendable in G by a filtered-out vertex —
        // those can only be smaller than t-maximal ones... so check
        // inclusion, then verify each expected clique appears.
        for c in &expected {
            assert!(
                translated.contains(c),
                "seed {seed}: clique {c:?} lost by the core filter"
            );
        }
    }
}

/// Sampled-world clique frequency must straddle the α threshold the same
/// way the exact probability does, for the cliques MULE reports.
#[test]
fn worlds_frequencies_consistent_with_alpha() {
    let g = random_graph(12, 0.6, 7);
    let alpha = 0.2;
    let cliques = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
    let mut rng = rng_from_seed(3);
    for c in cliques.iter().take(5) {
        let (clq_freq, max_freq) = worlds::maximality_frequency(&g, c, 30_000, &mut rng);
        let exact = ugraph_core::clique::clique_probability(&g, c).unwrap();
        assert!(
            (clq_freq - exact).abs() < 0.02,
            "{c:?}: {clq_freq} vs {exact}"
        );
        assert!(max_freq <= clq_freq + 1e-12);
        // An α-maximal clique has clique probability ≥ α, hence frequency
        // comfortably above α − sampling noise.
        assert!(clq_freq > alpha - 0.02);
    }
}

/// Zou-style skeleton top-k and α-maximal top-k agree on graphs where all
/// probabilities are high (every skeleton-maximal clique clears α), and
/// diverge when weak edges matter.
#[test]
fn topk_semantics_agree_in_the_high_probability_regime() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut b = GraphBuilder::new(14);
    for u in 0..14u32 {
        for v in (u + 1)..14 {
            if rng.gen::<f64>() < 0.5 {
                b.add_edge(u, v, 0.97 + 0.03 * (1.0 - rng.gen::<f64>()))
                    .unwrap();
            }
        }
    }
    let g = b.build();
    // α low enough that every skeleton clique qualifies.
    let alpha = 1e-3;
    let alpha_top = mule::topk::top_k_maximal_cliques(&g, alpha, 3).unwrap();
    let (zou_top, _) = zou_topk::zou_top_k(&g, 3, 0.0);
    let a: Vec<_> = alpha_top.iter().map(|(c, _)| c.clone()).collect();
    let z: Vec<_> = zou_top.iter().map(|(c, _)| c.clone()).collect();
    assert_eq!(a, z, "semantics must coincide when α never bites");
}

/// End-to-end planted recovery with the verifier in the loop, smaller and
/// faster than the example but covering the same path.
#[test]
fn planted_instances_recovered_and_verified() {
    let params = PlantedParams {
        n: 300,
        num_plants: 3,
        plant_size: 5,
        plant_prob: 0.9,
        noise_edges: 500,
        noise_model: EdgeProbModel::Uniform { lo: 0.0, hi: 0.5 },
    };
    let mut rng = rng_from_seed(99);
    let inst = planted_cliques(params, &mut rng);
    let alpha = inst.plant_clique_prob * 0.9;
    let mined = mule::enumerate_maximal_cliques(&inst.graph, alpha).unwrap();
    for plant in &inst.plants {
        assert!(mined.contains(plant), "plant {plant:?} not recovered");
    }
    assert!(verify::verify_sound(&inst.graph, alpha, &mined)
        .unwrap()
        .is_empty());
}

/// The verifier catches deliberately corrupted output from *any* producer.
#[test]
fn verifier_cross_checks_all_algorithms() {
    let g = random_graph(15, 0.5, 21);
    let alpha = 0.1;
    let outputs = [
        mule::enumerate_maximal_cliques(&g, alpha).unwrap(),
        mule::dfs_noip::enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
        mule::par_enumerate_maximal_cliques(&g, alpha, 2)
            .unwrap()
            .cliques,
    ];
    for (i, cliques) in outputs.iter().enumerate() {
        let v = verify::verify_complete(&g, alpha, cliques).unwrap();
        assert!(v.is_empty(), "producer {i}: {v:?}");
        // Corruption is detected: drop the last clique.
        if cliques.len() > 1 {
            let truncated = &cliques[..cliques.len() - 1];
            let v = verify::verify_complete(&g, alpha, truncated).unwrap();
            assert!(!v.is_empty(), "producer {i}: missing clique not flagged");
        }
    }
}

/// Core numbers upper-bound clique membership: a vertex in an α-maximal
/// clique of size s has expected-degree core number ≥ (s−1)·α in the
/// pruned graph.
#[test]
fn core_numbers_bound_clique_membership() {
    let g = random_graph(20, 0.5, 33);
    let alpha = 0.15;
    let pruned = ugraph_core::subgraph::prune_below_alpha(&g, alpha).unwrap();
    let decomp = kcore::CoreDecomposition::compute(&pruned);
    for c in mule::enumerate_maximal_cliques(&g, alpha).unwrap() {
        let bound = (c.len() as f64 - 1.0) * alpha;
        for &v in &c {
            assert!(
                decomp.core_number(v) >= bound - 1e-9,
                "vertex {v} core {} below bound {bound} for clique {c:?}",
                decomp.core_number(v)
            );
        }
    }
}
