//! Adversarial catalog battery: every way a UGQ1 file can be damaged or
//! forged must surface as a **typed error** — never a panic, never an
//! allocation blow-up, and never silently-served data.
//!
//! Two threat models:
//!
//! * **Bit rot / truncation** — random or systematic byte damage. The
//!   container's checksums (header CRC, TOC CRC, per-section CRCs,
//!   whole-payload hash) must catch every single-byte flip and every
//!   truncation point.
//! * **Checksum-valid forgery** — an attacker (or a buggy writer) who
//!   recomputes the checksums. The mule layer must re-validate the
//!   semantic invariants: canonical section order, monotone id maps,
//!   well-formed schedule, α-pruned component graphs, plausible counts.

use mule::{MuleError, Query};
use proptest::prelude::*;
use ugraph_core::builder::from_edges;
use ugraph_io::catalog::{crc32, Catalog, CatalogError, CatalogWriter, HEADER_LEN};
use ugraph_io::Bytes;

/// A small but fully featured catalog: two components, singletons, a
/// sub-α edge pruned away.
fn fixture_bytes() -> Vec<u8> {
    let g = from_edges(
        9,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (4, 5, 0.8),
            (5, 6, 0.8),
            (4, 6, 0.8),
            (7, 8, 0.3),
        ],
    )
    .unwrap();
    Query::new(&g)
        .alpha(0.5)
        .prepare()
        .unwrap()
        .to_catalog_bytes()
}

/// Open must fail with the catalog-typed error (I/O damage is a
/// different test). Returns the message for content assertions.
fn assert_rejected(bytes: Vec<u8>, what: &str) -> String {
    match Query::open_bytes(bytes) {
        Ok(_) => panic!("{what}: hostile catalog was accepted"),
        Err(MuleError::Catalog(e)) => e.to_string(),
        Err(other) => panic!("{what}: wrong error variant: {other}"),
    }
}

/// Re-serialize a catalog through `CatalogWriter` with transformed
/// sections — all checksums valid, semantics attacker-controlled.
fn reforge(bytes: &[u8], transform: impl Fn(&mut Vec<(String, Vec<u8>)>)) -> Vec<u8> {
    let cat = Catalog::from_bytes(Bytes::from(bytes.to_vec())).unwrap();
    let mut sections: Vec<(String, Vec<u8>)> = cat
        .sections()
        .iter()
        .map(|e| (e.name.clone(), cat.section(&e.name).unwrap().to_vec()))
        .collect();
    transform(&mut sections);
    let mut writer = CatalogWriter::new(*cat.header());
    for (name, payload) in sections {
        writer.add_section(name, payload);
    }
    writer.finish()
}

/// Patch the 20 trailing bytes (offset u64, length u64, crc u32) of a
/// named TOC entry and re-seal the TOC checksum, so the damage reaches
/// the section-level validation instead of dying at the TOC CRC.
fn patch_toc_entry(bytes: &mut [u8], target: &str, patch: impl Fn(&mut [u8])) {
    let toc_len = u32::from_le_bytes(bytes[76..80].try_into().unwrap()) as usize;
    let toc_start = HEADER_LEN;
    let mut pos = toc_start;
    while pos < toc_start + toc_len {
        let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
        let name = std::str::from_utf8(&bytes[pos + 2..pos + 2 + name_len]).unwrap();
        let fields = pos + 2 + name_len;
        if name == target {
            patch(&mut bytes[fields..fields + 20]);
            let toc_crc = crc32(&bytes[toc_start..toc_start + toc_len]);
            bytes[toc_start + toc_len..toc_start + toc_len + 4]
                .copy_from_slice(&toc_crc.to_le_bytes());
            return;
        }
        pos = fields + 20;
    }
    panic!("section {target} not in TOC");
}

/// Re-seal the header CRC after patching header bytes.
fn reseal_header(bytes: &mut [u8]) {
    let crc = crc32(&bytes[..HEADER_LEN - 4]);
    bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let good = fixture_bytes();
    assert!(Query::open_bytes(good.clone()).is_ok(), "fixture must open");
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        match Query::open_bytes(bad) {
            Ok(_) => panic!("flip at byte {i} went undetected"),
            Err(MuleError::Catalog(_)) => {}
            Err(other) => panic!("flip at byte {i}: wrong error variant: {other}"),
        }
    }
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let good = fixture_bytes();
    let cat = Catalog::from_bytes(Bytes::from(good.clone())).unwrap();
    // Structural boundaries: mid-header, end of header, end of TOC, and
    // the start and end of every section payload.
    let mut cuts = vec![0, 1, HEADER_LEN / 2, HEADER_LEN];
    for e in cat.sections() {
        cuts.push(e.offset as usize);
        cuts.push((e.offset + e.length) as usize);
    }
    cuts.push(good.len() - 1);
    for cut in cuts {
        if cut >= good.len() {
            continue;
        }
        assert_rejected(good[..cut].to_vec(), &format!("truncation at {cut}"));
    }
    // Trailing garbage is as corrupt as missing bytes.
    let mut padded = good.clone();
    padded.push(0);
    assert_rejected(padded, "trailing byte");
}

#[test]
fn swapped_section_order_is_rejected_despite_valid_checksums() {
    let good = fixture_bytes();
    let n = Catalog::from_bytes(Bytes::from(good.clone()))
        .unwrap()
        .sections()
        .len();
    assert!(n >= 5, "fixture should have at least two components");
    for (i, j) in [(0, 1), (0, n - 1), (n - 2, n - 1)] {
        let forged = reforge(&good, |sections| sections.swap(i, j));
        let msg = assert_rejected(forged, &format!("swap {i}<->{j}"));
        assert!(msg.contains("canonical order"), "{msg}");
    }
}

#[test]
fn zeroed_section_crc_is_rejected() {
    let good = fixture_bytes();
    let target = "schedule";
    let mut bad = good.clone();
    patch_toc_entry(&mut bad, target, |fields| {
        fields[16..20].fill(0); // the stored crc32
    });
    let msg = assert_rejected(bad, "zeroed crc");
    assert!(msg.contains("crc32 mismatch"), "{msg}");
}

#[test]
fn oversized_section_length_is_rejected_structurally() {
    let good = fixture_bytes();
    for huge in [u64::MAX, u64::MAX / 2, 1 << 40] {
        let mut bad = good.clone();
        patch_toc_entry(&mut bad, "report", |fields| {
            fields[8..16].copy_from_slice(&huge.to_le_bytes());
        });
        // The structural layout check (sections must exactly tile the
        // payload region) fires before any length-sized allocation.
        assert_rejected(bad, &format!("length {huge}"));
    }
}

#[test]
fn unsupported_version_is_a_distinct_typed_error() {
    let mut bad = fixture_bytes();
    bad[4..8].copy_from_slice(&2u32.to_le_bytes());
    reseal_header(&mut bad);
    match Query::open_bytes(bad) {
        Err(MuleError::Catalog(CatalogError::UnsupportedVersion { found })) => {
            assert_eq!(found, 2)
        }
        other => panic!("wrong result for v2 catalog: {:?}", other.map(|_| "opened")),
    }
}

#[test]
fn forged_semantic_corruption_is_rejected() {
    let good = fixture_bytes();

    // Non-monotone id map (checksums valid).
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "component.0.map")
            .unwrap();
        let len = payload.len();
        payload.swap(8, len - 4); // swap first/last id's low bytes
    });
    let msg = assert_rejected(forged, "non-monotone map");
    assert!(
        msg.contains("strictly increasing") || msg.contains("out of range"),
        "{msg}"
    );

    // Unknown schedule unit tag.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "schedule")
            .unwrap();
        payload[8] = 7; // first unit's tag byte
    });
    let msg = assert_rejected(forged, "bad schedule tag");
    assert!(msg.contains("unknown tag"), "{msg}");

    // A stray section the format does not define.
    let forged = reforge(&good, |sections| {
        sections.push(("evil".to_string(), vec![1, 2, 3]));
    });
    let msg = assert_rejected(forged, "stray section");
    assert!(
        msg.contains("canonical order") || msg.contains("sections"),
        "{msg}"
    );

    // A dropped section.
    let forged = reforge(&good, |sections| {
        sections.retain(|(name, _)| name != "report");
    });
    assert_rejected(forged, "missing report");

    // A component edge probability forged below the catalog's α:
    // checksums fine, kernel precondition violated. Raise the stored α
    // above the fixture's weakest surviving edge (0.8) instead of
    // digging the probability bytes out of the CSR payload.
    let mut forged = good.clone();
    forged[16..24].copy_from_slice(&0.85f64.to_bits().to_le_bytes());
    reseal_header(&mut forged);
    let msg = assert_rejected(forged, "sub-α edge");
    assert!(msg.contains("below the catalog's α"), "{msg}");

    // Report counters disagreeing with the header fingerprint.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "report")
            .unwrap();
        payload[8..16].copy_from_slice(&12345u64.to_le_bytes());
    });
    let msg = assert_rejected(forged, "lying report");
    assert!(msg.contains("fingerprint"), "{msg}");
}

/// The α-generic base variant of the fixture: same graph, floor 0.5,
/// so the 0.3 edge is floor-pruned and vertices 3/7/8 are isolated.
fn base_fixture_bytes() -> Vec<u8> {
    let g = from_edges(
        9,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (4, 5, 0.8),
            (5, 6, 0.8),
            (4, 6, 0.8),
            (7, 8, 0.3),
        ],
    )
    .unwrap();
    Query::new(&g)
        .alpha_floor(0.5)
        .prepare_base()
        .unwrap()
        .to_catalog_bytes()
}

/// The base open path must also fail with the catalog-typed error.
fn assert_base_rejected(bytes: Vec<u8>, what: &str) -> String {
    match Query::open_base_bytes(bytes) {
        Ok(_) => panic!("{what}: hostile base catalog was accepted"),
        Err(MuleError::Catalog(e)) => e.to_string(),
        Err(other) => panic!("{what}: wrong error variant: {other}"),
    }
}

#[test]
fn base_every_single_byte_flip_is_rejected() {
    let good = base_fixture_bytes();
    assert!(
        Query::open_base_bytes(good.clone()).is_ok(),
        "base fixture must open"
    );
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        match Query::open_base_bytes(bad) {
            Ok(_) => panic!("flip at byte {i} went undetected"),
            Err(MuleError::Catalog(_)) => {}
            Err(other) => panic!("flip at byte {i}: wrong error variant: {other}"),
        }
    }
}

#[test]
fn base_truncation_at_every_section_boundary_is_rejected() {
    let good = base_fixture_bytes();
    let cat = Catalog::from_bytes(Bytes::from(good.clone())).unwrap();
    let mut cuts = vec![0, 1, HEADER_LEN / 2, HEADER_LEN];
    for e in cat.sections() {
        cuts.push(e.offset as usize);
        cuts.push((e.offset + e.length) as usize);
    }
    cuts.push(good.len() - 1);
    for cut in cuts {
        if cut >= good.len() {
            continue;
        }
        assert_base_rejected(good[..cut].to_vec(), &format!("truncation at {cut}"));
    }
}

#[test]
fn base_forged_semantic_corruption_is_rejected() {
    let good = base_fixture_bytes();

    // Opening a base through the fixed path (and vice versa) is a
    // distinct, typed wrong-kind error — not generic corruption.
    match Query::open_bytes(good.clone()) {
        Err(MuleError::Catalog(CatalogError::WrongKind { .. })) => {}
        other => panic!("fixed open of base: {:?}", other.map(|_| "opened")),
    }
    match Query::open_base_bytes(fixture_bytes()) {
        Err(MuleError::Catalog(CatalogError::WrongKind { .. })) => {}
        other => panic!("base open of fixed: {:?}", other.map(|_| "opened")),
    }

    // Swapped tail sections (checksums valid).
    let forged = reforge(&good, |sections| {
        let n = sections.len();
        sections.swap(n - 2, n - 1); // isolated <-> base.meta
    });
    let msg = assert_base_rejected(forged, "swapped tail");
    assert!(msg.contains("canonical order"), "{msg}");

    // A stray section.
    let forged = reforge(&good, |sections| {
        sections.push(("evil".to_string(), vec![0; 12]));
    });
    let msg = assert_base_rejected(forged, "stray section");
    assert!(
        msg.contains("canonical order") || msg.contains("sections"),
        "{msg}"
    );

    // A dropped base.meta breaks the 2k+2 section count.
    let forged = reforge(&good, |sections| {
        sections.retain(|(name, _)| name != "base.meta");
    });
    assert_base_rejected(forged, "missing base.meta");

    // Non-monotone isolated ids (the fixture isolates 3, 7 and 8).
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "isolated")
            .unwrap();
        let len = payload.len();
        payload.swap(8, len - 4); // swap first/last id's low bytes
    });
    let msg = assert_base_rejected(forged, "non-monotone isolated");
    assert!(
        msg.contains("strictly increasing") || msg.contains("out of range"),
        "{msg}"
    );

    // Coverage hole: empty the isolated list, checksums intact.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "isolated")
            .unwrap();
        *payload = 0u64.to_le_bytes().to_vec();
    });
    let msg = assert_base_rejected(forged, "coverage hole");
    assert!(msg.contains("cover"), "{msg}");

    // A floor raised above a stored edge's probability: the stored
    // component graphs would violate the floor precondition.
    let mut forged = good.clone();
    forged[16..24].copy_from_slice(&0.85f64.to_bits().to_le_bytes());
    reseal_header(&mut forged);
    let msg = assert_base_rejected(forged, "sub-floor edge");
    assert!(msg.contains("below the catalog's α"), "{msg}");

    // A floor outside [0, 1] — including NaN — is rejected up front.
    for bad_floor in [1.5, -0.25, f64::NAN] {
        let mut forged = good.clone();
        forged[16..24].copy_from_slice(&bad_floor.to_bits().to_le_bytes());
        reseal_header(&mut forged);
        let msg = assert_base_rejected(forged, &format!("floor {bad_floor}"));
        assert!(msg.contains("floor"), "{msg}");
    }

    // A lying edge fingerprint (header original_edges too small).
    let mut forged = good.clone();
    forged[56..64].copy_from_slice(&1u64.to_le_bytes());
    reseal_header(&mut forged);
    let msg = assert_base_rejected(forged, "edge fingerprint");
    assert!(msg.contains("fingerprint"), "{msg}");

    // A truncated base.meta (name length pointing past the payload).
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "base.meta")
            .unwrap();
        payload[..4].copy_from_slice(&1000u32.to_le_bytes());
    });
    let msg = assert_base_rejected(forged, "truncated meta");
    assert!(msg.contains("base.meta"), "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn base_random_byte_damage_never_panics_or_serves_data(
        seed in 0u64..1_000_000,
        flips in 1usize..4,
    ) {
        let good = base_fixture_bytes();
        let mut bad = good.clone();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..flips {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % bad.len();
            let mask = (state >> 25) as u8;
            bad[pos] ^= mask;
        }
        if bad != good {
            match Query::open_base_bytes(bad) {
                Ok(_) => prop_assert!(false, "multi-byte damage went undetected"),
                Err(MuleError::Catalog(_)) => {}
                Err(other) => prop_assert!(false, "wrong error variant: {other}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_byte_damage_never_panics_or_serves_data(
        seed in 0u64..1_000_000,
        flips in 1usize..4,
    ) {
        let good = fixture_bytes();
        let mut bad = good.clone();
        // Cheap deterministic pseudo-random positions/masks from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..flips {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % bad.len();
            let mask = (state >> 25) as u8;
            bad[pos] ^= mask;
        }
        // Flips can cancel (same position, same mask) — only a net
        // change must be rejected.
        if bad != good {
            match Query::open_bytes(bad) {
                Ok(_) => prop_assert!(false, "multi-byte damage went undetected"),
                Err(MuleError::Catalog(_)) => {}
                Err(other) => prop_assert!(false, "wrong error variant: {other}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Appended delta sections: the same two threat models over `delta.{i}`
// ---------------------------------------------------------------------------

/// The fixture with one committed mutation batch appended: insert the
/// bridge 3–7 and drop a triangle edge. Both ops replay on open.
fn delta_fixture_bytes() -> Vec<u8> {
    let delta = mule::GraphDelta::new().insert(3, 7, 0.9).delete(4, 5);
    let (bytes, pending) =
        mule::catalog::append_delta_bytes(Bytes::from(fixture_bytes()), &delta).unwrap();
    assert_eq!(pending, 1);
    bytes
}

#[test]
fn delta_every_single_byte_flip_is_rejected() {
    let good = delta_fixture_bytes();
    assert!(
        Query::open_bytes(good.clone()).is_ok(),
        "delta fixture must open"
    );
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        match Query::open_bytes(bad) {
            Ok(_) => panic!("flip at byte {i} went undetected"),
            Err(MuleError::Catalog(_)) => {}
            Err(other) => panic!("flip at byte {i}: wrong error variant: {other}"),
        }
    }
}

#[test]
fn delta_truncation_at_every_section_boundary_is_rejected() {
    let good = delta_fixture_bytes();
    let cat = Catalog::from_bytes(Bytes::from(good.clone())).unwrap();
    let delta_off = cat
        .sections()
        .iter()
        .find(|e| e.name == "delta.0")
        .expect("delta.0 in TOC")
        .offset as usize;
    // Every byte boundary of the delta payload plus the file tail.
    for cut in (delta_off..good.len()).chain([good.len() - 1]) {
        assert_rejected(good[..cut].to_vec(), &format!("truncation at {cut}"));
    }
}

#[test]
fn forged_delta_corruption_is_rejected() {
    let good = delta_fixture_bytes();

    // Unknown op tag (checksums re-sealed).
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "delta.0")
            .unwrap();
        payload[8] = 9; // first op's tag byte
    });
    let msg = assert_rejected(forged, "bad op tag");
    assert!(msg.contains("unknown tag"), "{msg}");

    // Count field lying about the payload length.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "delta.0")
            .unwrap();
        payload[..8].copy_from_slice(&100u64.to_le_bytes());
    });
    let msg = assert_rejected(forged, "lying count");
    assert!(msg.contains("does not match op count"), "{msg}");

    // A delete op smuggling non-zero probability bits.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "delta.0")
            .unwrap();
        // Second op (the delete) starts at 8 + 17; its prob bits at +9.
        payload[8 + 17 + 9] = 1;
    });
    let msg = assert_rejected(forged, "delete with prob bits");
    assert!(msg.contains("non-zero prob bits"), "{msg}");

    // A payload shorter than its count field.
    let forged = reforge(&good, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "delta.0")
            .unwrap();
        *payload = vec![1, 2, 3];
    });
    let msg = assert_rejected(forged, "short payload");
    assert!(
        msg.contains("count field") || msg.contains("op count"),
        "{msg}"
    );

    // Numbering gap: delta.0 renamed delta.1.
    let forged = reforge(&good, |sections| {
        for (name, _) in sections.iter_mut() {
            if name == "delta.0" {
                *name = "delta.1".to_string();
            }
        }
    });
    let msg = assert_rejected(forged, "numbering gap");
    assert!(msg.contains("out of sequence"), "{msg}");

    // A delta section shuffled in front of the core sections.
    let forged = reforge(&good, |sections| {
        let i = sections.iter().position(|(n, _)| n == "delta.0").unwrap();
        let sec = sections.remove(i);
        sections.insert(0, sec);
    });
    assert_rejected(forged, "delta before core");

    // A checksum-valid batch that does not replay (deletes an edge the
    // core artifact never had): append proves applicability before it
    // writes, so this file can only be forged — typed corruption.
    let forged = reforge(&fixture_bytes(), |sections| {
        let bad = mule::GraphDelta::new().delete(0, 8);
        sections.push(("delta.0".to_string(), bad.to_bytes()));
    });
    let msg = assert_rejected(forged, "unreplayable delta");
    assert!(msg.contains("delta rejected"), "{msg}");
}

#[test]
fn base_forged_delta_corruption_is_rejected() {
    // The α-base replay path wraps the same validation: an appended
    // batch that cannot replay is typed corruption on open.
    let good = base_fixture_bytes();
    let delta = mule::GraphDelta::new().insert(3, 7, 0.9);
    let (with_delta, pending) =
        mule::catalog::append_delta_bytes(Bytes::from(good.clone()), &delta).unwrap();
    assert_eq!(pending, 1);
    assert!(
        Query::open_base_bytes(with_delta.clone()).is_ok(),
        "base delta fixture must open"
    );

    let forged = reforge(&with_delta, |sections| {
        let (_, payload) = sections
            .iter_mut()
            .find(|(name, _)| name == "delta.0")
            .unwrap();
        payload[8] = 9;
    });
    let msg = assert_base_rejected(forged, "bad base op tag");
    assert!(msg.contains("unknown tag"), "{msg}");

    let forged = reforge(&good, |sections| {
        let bad = mule::GraphDelta::new().delete(0, 8);
        sections.push(("delta.0".to_string(), bad.to_bytes()));
    });
    let msg = assert_base_rejected(forged, "unreplayable base delta");
    assert!(msg.contains("delta rejected"), "{msg}");
}
