//! Pipeline-on vs pipeline-off oracle equality (satellite of PR 3).
//!
//! The preprocessing pipeline (`mule::prepare`: α-prune → expected-degree
//! core filter → shared-neighborhood peel → component shard) promises to
//! be **invisible in the output**: same cliques, same canonical order,
//! bit-equal probabilities, for every enumeration entry point. These
//! tests drive random and structured graphs through both paths across
//! α, `min_size`, and config variants and compare exactly — this is the
//! acceptance pin for the "byte-identical on default settings" claim.

use mule::sinks::CollectSink;
use mule::{LargeMule, Mule, PrepareConfig};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Emission-ordered `(clique, prob bits)` pairs from the direct MULE
/// path (no pipeline).
fn direct_mule(g: &UncertainGraph, alpha: f64) -> Vec<(Vec<VertexId>, u64)> {
    let mut m = Mule::new(g, alpha).unwrap();
    let mut sink = CollectSink::new();
    m.run(&mut sink);
    sink.into_pairs()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect()
}

/// Emission-ordered pairs from the pipeline with the given config.
fn piped(g: &UncertainGraph, alpha: f64, cfg: &PrepareConfig) -> Vec<(Vec<VertexId>, u64)> {
    let mut inst = mule::prepare(g, alpha, cfg).unwrap();
    let mut sink = CollectSink::new();
    inst.run(&mut sink);
    sink.into_pairs()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect()
}

/// Sorted pairs from the direct LARGE–MULE path.
fn direct_large(g: &UncertainGraph, alpha: f64, t: usize) -> Vec<(Vec<VertexId>, u64)> {
    let mut lm = LargeMule::new(g, alpha, t).unwrap();
    let mut sink = CollectSink::new();
    lm.run(&mut sink);
    let mut pairs: Vec<(Vec<VertexId>, u64)> = sink
        .into_pairs()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    pairs.sort();
    pairs
}

fn random_graph(seed: u64, n: usize, density: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

const ALPHAS: [f64; 4] = [0.9, 0.5, 0.1, 0.01];

/// Default pipeline vs direct MULE: byte-identical emission stream
/// (same cliques, same order, same probability bits).
#[test]
fn default_pipeline_is_byte_identical_to_direct_mule() {
    for seed in 0..20u64 {
        // Sparse densities keep the graphs fragmented so the component
        // shard actually has components to interleave.
        let density = [0.08, 0.15, 0.3, 0.6][(seed % 4) as usize];
        let g = random_graph(seed, 14 + (seed % 6) as usize, density);
        for alpha in ALPHAS {
            assert_eq!(
                piped(&g, alpha, &PrepareConfig::default()),
                direct_mule(&g, alpha),
                "seed={seed} α={alpha}"
            );
        }
    }
}

/// Pipeline statistics equal the direct search's on default settings:
/// the per-component kernels do exactly the work the whole-graph kernel
/// would, no more, no less.
#[test]
fn default_pipeline_stats_equal_direct_mule() {
    for seed in 0..8u64 {
        let g = random_graph(seed, 14, 0.2);
        for alpha in [0.5, 0.05] {
            let mut m = Mule::new(&g, alpha).unwrap();
            let mut s1 = mule::sinks::CountSink::new();
            m.run(&mut s1);
            let mut inst = mule::prepare(&g, alpha, &PrepareConfig::default()).unwrap();
            let mut s2 = mule::sinks::CountSink::new();
            inst.run(&mut s2);
            assert_eq!(inst.stats(), m.stats(), "seed={seed} α={alpha}");
            assert_eq!(s1.count, s2.count);
        }
    }
}

/// min_size pipeline (core filter + peel + size bound per component) vs
/// direct LARGE–MULE, as sorted sets with bit-equal probabilities.
#[test]
fn min_size_pipeline_matches_direct_large_mule() {
    for seed in 0..15u64 {
        let density = [0.15, 0.35, 0.6][(seed % 3) as usize];
        let g = random_graph(100 + seed, 13 + (seed % 5) as usize, density);
        for alpha in ALPHAS {
            for t in 2..=5usize {
                let mut got = piped(&g, alpha, &PrepareConfig::with_min_size(t));
                got.sort();
                assert_eq!(
                    got,
                    direct_large(&g, alpha, t),
                    "seed={seed} α={alpha} t={t}"
                );
            }
        }
    }
}

/// Every stage toggle is output-neutral: switching the core filter,
/// the shared-neighborhood peel, or sharding on/off never changes the
/// result set.
#[test]
fn stage_toggles_are_output_neutral() {
    for seed in 0..8u64 {
        let g = random_graph(200 + seed, 14, 0.3);
        for alpha in [0.5, 0.1] {
            for t in [0usize, 3, 4] {
                let reference = {
                    let mut pairs = piped(&g, alpha, &PrepareConfig::with_min_size(t));
                    pairs.sort();
                    pairs
                };
                for (core, shared, shard) in [
                    (false, true, true),
                    (true, false, true),
                    (true, true, false),
                    (false, false, false),
                ] {
                    let cfg = PrepareConfig {
                        min_size: t,
                        core_filter: core,
                        shared_neighborhood: shared,
                        shard_components: shard,
                        ..Default::default()
                    };
                    let mut got = piped(&g, alpha, &cfg);
                    got.sort();
                    assert_eq!(
                        got, reference,
                        "seed={seed} α={alpha} t={t} core={core} shared={shared} shard={shard}"
                    );
                }
            }
        }
    }
}

/// Structured edge cases: disconnected shapes, isolated vertices, the
/// empty and edgeless graphs.
#[test]
fn structured_graphs_agree() {
    let mut cases: Vec<UncertainGraph> = Vec::new();
    cases.push(GraphBuilder::new(0).build());
    cases.push(GraphBuilder::new(5).build());
    {
        // Two components + isolated vertices interleaved by id.
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 4), (4, 8), (0, 8)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        for (u, v) in [(1, 5), (5, 9), (1, 9)] {
            b.add_edge(u, v, 0.7).unwrap();
        }
        cases.push(b.build());
    }
    {
        // A hub component plus a far-away pendant pair.
        let mut b = GraphBuilder::new(30);
        for v in 1..20u32 {
            b.add_edge(0, v, 0.6 + 0.02 * v as f64).unwrap();
        }
        b.add_edge(27, 29, 0.4).unwrap();
        cases.push(b.build());
    }
    for (i, g) in cases.iter().enumerate() {
        for alpha in ALPHAS {
            assert_eq!(
                piped(g, alpha, &PrepareConfig::default()),
                direct_mule(g, alpha),
                "case={i} α={alpha}"
            );
        }
    }
}

/// The parallel driver (which routes through the pipeline) stays
/// byte-identical to the direct sequential path at every thread count —
/// the end-to-end pin across both PR-2 (scheduler) and PR-3 (pipeline)
/// layers.
#[test]
fn parallel_pipeline_matches_direct_sequential() {
    for seed in 0..6u64 {
        let g = random_graph(300 + seed, 16, 0.25);
        for alpha in [0.5, 0.05] {
            let expected = direct_mule(&g, alpha);
            for threads in [1usize, 2, 5] {
                let out = mule::par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                let got: Vec<(Vec<VertexId>, u64)> = out
                    .cliques
                    .into_iter()
                    .zip(out.probs.iter().map(|p| p.to_bits()))
                    .collect();
                assert_eq!(got, expected, "seed={seed} α={alpha} threads={threads}");
            }
        }
    }
}

/// Top-k through the pipeline (both variants) equals top-k computed
/// from the direct full enumeration.
#[test]
fn topk_pipeline_matches_direct_selection() {
    for seed in 0..6u64 {
        let g = random_graph(400 + seed, 12, 0.4);
        for alpha in [0.5, 0.1] {
            let mut all: Vec<(Vec<VertexId>, f64)> = {
                let mut m = Mule::new(&g, alpha).unwrap();
                let mut sink = CollectSink::new();
                m.run(&mut sink);
                sink.into_pairs()
            };
            all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for k in [1usize, 4, 9] {
                let expected: Vec<(Vec<VertexId>, f64)> = all.iter().take(k).cloned().collect();
                let got = mule::topk::top_k_maximal_cliques(&g, alpha, k).unwrap();
                assert_eq!(got, expected, "seed={seed} α={alpha} k={k} (baseline)");
                let pruned = mule::topk::top_k_maximal_cliques_pruned(&g, alpha, k).unwrap();
                assert_eq!(pruned, expected, "seed={seed} α={alpha} k={k} (pruned)");
            }
        }
    }
}
