//! Tiered neighborhood-index equality pins (satellite of PR 4).
//!
//! The tiered index (`ugraph_core::NeighborhoodIndex`: bitset membership
//! rows everywhere, dense `f64` probability rows for hubs) and the
//! adaptive filter dispatch (dense / bitset+gallop / merge) promise to
//! be **invisible in the output**: the dense rows store the identical
//! CSR `f64` bits and every strategy multiplies the same factors in the
//! same order, so survivors and probabilities are bit-equal whichever
//! path answers a probe. These properties drive hub-bearing random
//! graphs (degree above the dense floor, so the dense tier really
//! engages) through every index mode and tier budget and compare the
//! emission streams exactly against the index-free CSR reference.
//!
//! Both filter entry points are covered: `filter_candidates_into` runs
//! at every interior search node, and the existence short-circuit
//! (`any_candidate_survives`) runs at every leaf child with empty `I'`
//! — random graphs at the swept α values hit both continuously.

use mule::sinks::CollectSink;
use mule::{IndexMode, LargeMule, Mule, MuleConfig, PrepareConfig};
use proptest::prelude::*;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Random graph with a planted hub (degree comfortably above both the
/// dense tier's absolute floor and its relative
/// `DENSE_HUB_DEGREE_FACTOR · mean` floor at the sparse end of the
/// density range) plus Bernoulli periphery, so runs exercise dense
/// rows, bitset rows, and — at `IndexMode::Never` — merge and gallop.
fn arb_hub_graph() -> impl Strategy<Value = UncertainGraph> {
    (24usize..=40, any::<u64>(), 0.02f64..0.35).prop_map(|(n, seed, density)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        // Hub at a high id so it shows up as a filter pivot (pivots are
        // candidates above the current clique's maximum), not only as a
        // search root.
        let hub = (n - 1) as u32;
        for v in 0..22u32 {
            b.add_edge(hub, v, 1.0 - rng.gen::<f64>() * 0.8).unwrap();
        }
        for u in 0..(n - 1) as u32 {
            for v in (u + 1)..(n - 1) as u32 {
                if rng.gen::<f64>() < density {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                }
            }
        }
        b.build()
    })
}

/// Emission-ordered `(clique, prob bits)` pairs from the direct MULE
/// path under an explicit config.
fn direct_pairs(g: &UncertainGraph, alpha: f64, cfg: MuleConfig) -> Vec<(Vec<VertexId>, u64)> {
    let mut m = Mule::with_config(g, alpha, cfg).unwrap();
    let mut sink = CollectSink::new();
    m.run(&mut sink);
    sink.into_pairs()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect()
}

/// Emission-ordered pairs from the preprocessing pipeline (compact
/// per-component kernels — the path where dense rows are
/// component-local) under an explicit kernel config.
fn piped_pairs(g: &UncertainGraph, alpha: f64, cfg: MuleConfig) -> Vec<(Vec<VertexId>, u64)> {
    let prep = PrepareConfig {
        mule: cfg,
        ..Default::default()
    };
    let mut inst = mule::prepare(g, alpha, &prep).unwrap();
    let mut sink = CollectSink::new();
    inst.run(&mut sink);
    sink.into_pairs()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect()
}

/// The tier-budget grid the pins sweep: dense tier disabled, one
/// component-sized row ("mid"), and unbounded.
fn budgets(n: usize) -> [usize; 3] {
    [0, 8 * n, usize::MAX]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Direct MULE: every index mode × dense budget produces the exact
    /// byte stream of the index-free CSR reference.
    #[test]
    fn tiered_index_is_byte_identical_to_csr(
        g in arb_hub_graph(),
        alpha_pow in 1u32..=10,
    ) {
        let alpha = 0.5f64.powi(alpha_pow as i32);
        let reference = direct_pairs(&g, alpha, MuleConfig {
            index_mode: IndexMode::Never,
            ..Default::default()
        });
        for mode in [IndexMode::Always, IndexMode::Auto] {
            for budget in budgets(g.num_vertices()) {
                let cfg = MuleConfig {
                    index_mode: mode,
                    dense_index_bytes: budget,
                    ..Default::default()
                };
                let got = direct_pairs(&g, alpha, cfg);
                prop_assert_eq!(
                    &got, &reference,
                    "mode {:?} budget {}", mode, budget
                );
            }
        }
    }

    /// Pipeline path: per-component kernels build their own (smaller)
    /// dense rows; the stream must still match the index-free direct
    /// reference byte for byte.
    #[test]
    fn pipelined_tiered_index_matches_csr_reference(
        g in arb_hub_graph(),
        alpha_pow in 1u32..=8,
    ) {
        let alpha = 0.5f64.powi(alpha_pow as i32);
        let reference = direct_pairs(&g, alpha, MuleConfig {
            index_mode: IndexMode::Never,
            ..Default::default()
        });
        for budget in budgets(g.num_vertices()) {
            let cfg = MuleConfig {
                index_mode: IndexMode::Always,
                dense_index_bytes: budget,
                ..Default::default()
            };
            prop_assert_eq!(
                &piped_pairs(&g, alpha, cfg), &reference,
                "budget {}", budget
            );
        }
    }

    /// The size-bounded kernel (LARGE–MULE's Algorithm 6 recursion)
    /// dispatches through the same adaptive filter; pin it too.
    #[test]
    fn large_mule_tiered_matches_csr(
        g in arb_hub_graph(),
        t in 3usize..=5,
    ) {
        let alpha = 0.05f64;
        let reference = {
            let cfg = MuleConfig { index_mode: IndexMode::Never, ..Default::default() };
            let mut lm = LargeMule::with_config(&g, alpha, t, cfg).unwrap();
            let mut sink = CollectSink::new();
            lm.run(&mut sink);
            sink.into_pairs()
                .into_iter()
                .map(|(c, p)| (c, p.to_bits()))
                .collect::<Vec<_>>()
        };
        for budget in budgets(g.num_vertices()) {
            let cfg = MuleConfig {
                index_mode: IndexMode::Always,
                dense_index_bytes: budget,
                ..Default::default()
            };
            let mut lm = LargeMule::with_config(&g, alpha, t, cfg).unwrap();
            let mut sink = CollectSink::new();
            lm.run(&mut sink);
            let got: Vec<(Vec<VertexId>, u64)> = sink
                .into_pairs()
                .into_iter()
                .map(|(c, p)| (c, p.to_bits()))
                .collect();
            prop_assert_eq!(&got, &reference, "t {} budget {}", t, budget);
        }
    }
}

/// The probe counters attribute work to the strategy that actually ran:
/// dense probes appear exactly when the dense tier is enabled, and the
/// index-free run splits its work across gallop and merge.
#[test]
fn probe_counters_attribute_strategies() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(5);
    // A real hub: degree far above the sparse periphery's mean, so it
    // clears the dense tier's relative floor
    // (`DENSE_HUB_DEGREE_FACTOR · mean degree`) — planted at the top id
    // so the search meets it as a filter pivot, not only as a root.
    let mut b = GraphBuilder::new(40);
    for v in 0..30u32 {
        b.add_edge(39, v, 0.95).unwrap();
    }
    for u in 0..39u32 {
        for v in (u + 1)..39u32 {
            if rng.gen::<f64>() < 0.08 {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.6).unwrap();
            }
        }
    }
    let g = b.build();

    let run = |mode: IndexMode, budget: usize| {
        let cfg = MuleConfig {
            index_mode: mode,
            dense_index_bytes: budget,
            ..Default::default()
        };
        let mut m = Mule::with_config(&g, 0.05, cfg).unwrap();
        let mut sink = mule::sinks::CountSink::new();
        m.run(&mut sink);
        (sink.count, *m.stats())
    };

    let (count_dense, dense) = run(IndexMode::Always, usize::MAX);
    let (count_bitset, bitset) = run(IndexMode::Always, 0);
    let (count_csr, csr) = run(IndexMode::Never, 0);
    assert_eq!(count_dense, count_bitset);
    assert_eq!(count_dense, count_csr);

    assert!(dense.dense_probes > 0, "hub row must answer probes");
    assert_eq!(bitset.dense_probes, 0);
    assert_eq!(csr.dense_probes, 0);
    assert_eq!(bitset.merge_steps, 0, "bitset path never merges");
    assert!(csr.gallop_probes + csr.merge_steps > 0);
    // The dense tier replaces gallops one for one on the hub's rows.
    assert!(
        dense.gallop_probes < bitset.gallop_probes,
        "dense {} vs bitset {}",
        dense.gallop_probes,
        bitset.gallop_probes
    );
    // The search tree itself is strategy-independent.
    assert_eq!(dense.calls, csr.calls);
    assert_eq!(dense.emitted, csr.emitted);
    assert_eq!(dense.i_candidates_scanned, bitset.i_candidates_scanned);
}
