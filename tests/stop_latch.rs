//! Cross-engine `Control::Stop` latch pin (property test).
//!
//! A sink that answers [`Control::Stop`] ends the enumeration *for
//! good*: the engine must unwind without another `emit` call — not
//! per branch, not per root, and in particular not per connected
//! component. PR 5 fixed NOIP's latch; this suite pins MULE,
//! LARGE-MULE and NOIP against the same three properties so the
//! engines cannot drift apart again:
//!
//! 1. **silence after Stop** — once a sink returns Stop it is never
//!    offered another clique, even when unexplored components remain;
//! 2. **exact cut** — a stop-after-`k` sink sees exactly
//!    `min(k, total)` emissions;
//! 3. **prefix identity** — the cliques (and probability bits) seen
//!    before the latch are byte-identical to the first `k` of the same
//!    engine's uninterrupted stream.
//!
//! Graphs are generated with two independent vertex blocks (no edges
//! across), so every case has ≥ 2 components and the latch must hold
//! across the component loop, the code path PR 5 repaired.

use mule::sinks::{CliqueSink, Control};
use mule::{DfsNoip, LargeMule, Mule};
use proptest::prelude::*;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Collects emissions, stops after `k`, and counts any emit call that
/// arrives *after* the sink already said Stop (there must be none).
struct LatchProbe {
    k: usize,
    seen: Vec<(Vec<VertexId>, u64)>,
    latched: bool,
    emits_after_stop: usize,
}

impl LatchProbe {
    fn new(k: usize) -> Self {
        LatchProbe {
            k,
            seen: Vec::new(),
            latched: false,
            emits_after_stop: 0,
        }
    }
}

impl CliqueSink for LatchProbe {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        if self.latched {
            self.emits_after_stop += 1;
            return Control::Stop;
        }
        self.seen.push((clique.to_vec(), prob.to_bits()));
        if self.seen.len() >= self.k {
            self.latched = true;
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// The full (uninterrupted) stream of one engine, in emission order,
/// with probability bits for byte-exact prefix comparison.
fn full_stream(run: &mut dyn FnMut(&mut LatchProbe)) -> Vec<(Vec<VertexId>, u64)> {
    let mut all = LatchProbe::new(usize::MAX);
    run(&mut all);
    assert_eq!(all.emits_after_stop, 0);
    all.seen
}

/// Pin all three latch properties for one engine closure.
fn assert_latches(
    name: &str,
    k: usize,
    run: &mut dyn FnMut(&mut LatchProbe),
) -> Result<(), TestCaseError> {
    let full = full_stream(run);
    let mut probe = LatchProbe::new(k);
    run(&mut probe);
    prop_assert_eq!(
        probe.emits_after_stop,
        0,
        "{}: sink saw emissions after returning Stop",
        name
    );
    prop_assert_eq!(
        probe.seen.len(),
        k.min(full.len()),
        "{}: stop-after-{} must see exactly min(k, total={})",
        name,
        k,
        full.len()
    );
    prop_assert_eq!(
        &probe.seen[..],
        &full[..probe.seen.len()],
        "{}: interrupted emissions are not a byte-identical prefix",
        name
    );
    Ok(())
}

/// Strategy: a graph made of two independent blocks (≥ 1 vertex each,
/// no cross edges → at least two connected components) with dyadic
/// probabilities so all threshold comparisons are exact, plus a dyadic
/// α and a stop point `k`.
fn split_graph_alpha_k() -> impl Strategy<Value = (UncertainGraph, f64, usize)> {
    (2..=12usize, any::<u64>(), 1u32..=6, 1..=6usize).prop_map(|(n, seed, alpha_pow, k)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let split = n / 2; // vertices [0, split) and [split, n) never touch
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let same_block = (u < split as u32) == (v < split as u32);
                if same_block && rng.gen::<f64>() < 0.7 {
                    let p = [1.0, 0.5, 0.25, 0.125][rng.gen_range(0..4usize)];
                    b.add_edge(u, v, p).unwrap();
                }
            }
        }
        (b.build(), 0.5f64.powi(alpha_pow as i32), k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_engines_latch_stop_identically((g, alpha, k) in split_graph_alpha_k()) {
        assert_latches("MULE", k, &mut |sink| {
            Mule::new(&g, alpha).unwrap().run(sink);
        })?;
        assert_latches("LARGE-MULE", k, &mut |sink| {
            LargeMule::new(&g, alpha, 2).unwrap().run(sink);
        })?;
        assert_latches("NOIP", k, &mut |sink| {
            DfsNoip::new(&g, alpha).unwrap().run(sink);
        })?;
    }

    /// The parallel front end latches through the [`mule::CancelToken`]
    /// instead of a sink return value: a tripped token retires every
    /// worker (each drains its own deque so peers cannot steal abandoned
    /// roots) and the run reports `Cancelled`. Resetting the token must
    /// leave the same session able to produce the full, untruncated
    /// output — the stop is a latch on the run, not on the session.
    #[test]
    fn parallel_front_end_latches_cancel_token((g, alpha, _k) in split_graph_alpha_k()) {
        let token = mule::CancelToken::new();
        let mut session = mule::Query::new(&g)
            .alpha(alpha)
            .threads(4)
            .cancel_token(token.clone())
            .prepare()
            .unwrap();
        token.cancel();
        let err = session.collect().expect_err("pre-tripped token must cancel");
        prop_assert!(
            matches!(err, mule::MuleError::Cancelled { .. }),
            "expected Cancelled, got {:?}",
            err
        );
        prop_assert!(err.interrupted_stats().is_some());

        token.reset();
        let full = session.collect().unwrap();
        let expected = full_stream(&mut |sink| {
            Mule::new(&g, alpha).unwrap().run(sink);
        });
        let got: Vec<(Vec<VertexId>, u64)> =
            full.into_iter().map(|(c, p)| (c, p.to_bits())).collect();
        prop_assert_eq!(got, expected);
    }
}
