//! End-to-end pipeline tests through the `uncertain-clique` facade:
//! generate → serialize → reload → enumerate → validate, the way a
//! downstream user would assemble the pieces.

use uncertain_clique::core::{clique, sample, DuplicatePolicy};
use uncertain_clique::gen::{datasets, rng::rng_from_seed};
use uncertain_clique::io;
use uncertain_clique::mule::sinks::{CountSink, SizeHistogramSink};
use uncertain_clique::mule::{topk, LargeMule};
use uncertain_clique::prelude::*;

#[test]
fn facade_prelude_covers_the_quickstart_path() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 0.9).unwrap();
    b.add_edge(1, 2, 0.9).unwrap();
    b.add_edge(0, 2, 0.9).unwrap();
    b.add_edge(2, 3, 0.6).unwrap();
    let g = b.build();
    let cliques = enumerate_maximal_cliques(&g, 0.5).unwrap();
    assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
    let stats = GraphStats::compute(&g);
    assert_eq!((stats.n, stats.m), (4, 4));
}

#[test]
fn dataset_to_text_to_enumeration_pipeline() {
    // A small-scale Gnutella stand-in through the full text I/O loop.
    let g = datasets::by_name("p2p-Gnutella08")
        .unwrap()
        .build_scaled(7, 0.05);
    let mut buf = Vec::new();
    io::write_prob_edgelist(&g, &mut buf).unwrap();
    let loaded = io::read_prob_edgelist(&buf[..], DuplicatePolicy::Error).unwrap();
    assert_eq!(loaded.graph.num_edges(), g.num_edges());

    // Enumeration on the loaded copy: counts must match the original
    // (vertex ids may be permuted by the reader's dense remap, so compare
    // size histograms rather than literal vertex sets). The text format
    // stores only edges, so isolated vertices — singleton maximal cliques —
    // exist in the generated graph but not the reloaded one; sizes ≥ 2
    // must agree exactly and the singleton gap must equal the number of
    // isolated vertices.
    let alpha = 0.05;
    let mut m1 = Mule::new(&g, alpha).unwrap();
    let mut h1 = SizeHistogramSink::new();
    m1.run(&mut h1);
    let mut m2 = Mule::new(&loaded.graph, alpha).unwrap();
    let mut h2 = SizeHistogramSink::new();
    m2.run(&mut h2);
    assert_eq!(
        &h1.histogram()[2..],
        &h2.histogram()[2..],
        "multi-vertex cliques must survive the text round-trip"
    );
    let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count() as u64;
    assert_eq!(
        h1.histogram()[1],
        h2.histogram().get(1).copied().unwrap_or(0) + isolated
    );
    assert!(h1.total() > 0);
}

#[test]
fn dataset_to_binary_cache_pipeline() {
    let dir = std::env::temp_dir().join(format!("uc-e2e-{}", std::process::id()));
    let g = datasets::by_name("Fruit-Fly").unwrap().build_scaled(3, 0.2);
    let cached = io::cache::load_or_build(&dir, "ff", || g.clone());
    assert_eq!(cached, g);
    let reloaded = io::cache::load_or_build(&dir, "ff", || panic!("must hit cache"));
    assert_eq!(reloaded, g);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mined_complexes_validate_against_possible_worlds() {
    let g = datasets::by_name("Fruit-Fly")
        .unwrap()
        .build_scaled(42, 0.3);
    let alpha = 0.4;
    let top = topk::top_k_maximal_cliques(&g, alpha, 5).unwrap();
    assert!(!top.is_empty());
    let mut rng = rng_from_seed(1);
    for (c, p) in &top {
        assert!(clique::is_alpha_maximal(&g, c, alpha));
        let est = sample::estimate_clique_probability(&g, c, 30_000, &mut rng);
        assert!((est - p).abs() < 0.03, "{c:?}: sampled {est} vs exact {p}");
    }
}

#[test]
fn large_mule_consistent_with_histogram_tail_on_dataset() {
    let g = datasets::by_name("ca-GrQc").unwrap().build_scaled(11, 0.1);
    let alpha = 0.05;
    let mut m = Mule::new(&g, alpha).unwrap();
    let mut hist = SizeHistogramSink::new();
    m.run(&mut hist);
    for t in [3usize, 4, 5] {
        let mut lm = LargeMule::new(&g, alpha, t).unwrap();
        let mut count = CountSink::new();
        lm.run(&mut count);
        assert_eq!(count.count, hist.count_at_least(t), "t = {t}");
    }
}

#[test]
fn parallel_and_sequential_agree_on_dataset() {
    let g = datasets::by_name("BA5000").unwrap().build_scaled(5, 0.04);
    let alpha = 0.01;
    let seq = enumerate_maximal_cliques(&g, alpha).unwrap();
    let par = uncertain_clique::mule::par_enumerate_maximal_cliques(&g, alpha, 4).unwrap();
    assert_eq!(par.cliques, seq);
    assert_eq!(par.stats.emitted as usize, seq.len());
}

#[test]
fn every_table1_dataset_builds_and_enumerates_at_small_scale() {
    for spec in datasets::table1() {
        let g = spec.build_scaled(9, 0.01);
        g.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let count = uncertain_clique::mule::count_maximal_cliques(&g, 0.3).unwrap();
        assert!(count > 0, "{} produced no cliques", spec.name);
    }
}
