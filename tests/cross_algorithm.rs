//! Cross-algorithm equivalence: every enumeration algorithm in the
//! workspace must produce the identical set of α-maximal cliques.
//!
//! Oracles and subjects:
//! * brute force over all subsets (`mule::naive`) — ground truth;
//! * MULE (both adjacency strategies, with and without degeneracy
//!   relabeling);
//! * DFS–NOIP;
//! * parallel MULE;
//! * LARGE–MULE vs the size-filtered ground truth;
//! * Bron–Kerbosch on the skeleton vs MULE as α → 0⁺.

use mule::enumerate::{IndexMode, Mule, MuleConfig};
use mule::sinks::CollectSink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

/// Random graph with probabilities drawn from powers of 1/2 — products of
/// such probabilities are *exact* in binary floating point, so threshold
/// comparisons agree across all multiplication orders and no algorithm can
/// disagree with another through rounding alone.
fn random_dyadic_graph(n: usize, edge_prob: f64, rng: &mut SmallRng) -> UncertainGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen::<f64>() < edge_prob {
                let p = [1.0, 0.5, 0.25, 0.125][rng.gen_range(0..4usize)];
                b.add_edge(u, v, p).unwrap();
            }
        }
    }
    b.build()
}

/// Random graph with continuous uniform probabilities (the paper's
/// semi-synthetic style). α values are chosen away from any product with
/// overwhelming probability; seeds are fixed so runs are reproducible.
fn random_uniform_graph(n: usize, edge_prob: f64, rng: &mut SmallRng) -> UncertainGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen::<f64>() < edge_prob {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

fn mule_with(g: &UncertainGraph, alpha: f64, config: MuleConfig) -> Vec<Vec<VertexId>> {
    let mut m = Mule::with_config(g, alpha, config).unwrap();
    let mut sink = CollectSink::new();
    m.run(&mut sink);
    sink.into_sorted_cliques()
}

#[test]
fn all_algorithms_match_brute_force_dyadic() {
    let mut rng = SmallRng::seed_from_u64(0xC110E);
    let alphas = [1.0, 0.5, 0.25, 0.125, 0.03125, 0.0009765625];
    for trial in 0..40 {
        let n = 4 + (trial % 9); // 4..=12
        let density = [0.2, 0.5, 0.8][trial % 3];
        let g = random_dyadic_graph(n, density, &mut rng);
        for &alpha in &alphas {
            let truth = mule::naive::enumerate_naive(&g, alpha).unwrap();
            let got_mule = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
            assert_eq!(got_mule, truth, "MULE trial={trial} n={n} α={alpha}");
            let got_noip = mule::dfs_noip::enumerate_maximal_cliques_noip(&g, alpha).unwrap();
            assert_eq!(got_noip, truth, "NOIP trial={trial} n={n} α={alpha}");
            let got_par = mule::par_enumerate_maximal_cliques(&g, alpha, 3).unwrap();
            assert_eq!(got_par.cliques, truth, "PAR trial={trial} n={n} α={alpha}");
        }
    }
}

#[test]
fn all_algorithms_match_brute_force_uniform() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for trial in 0..30 {
        let n = 5 + (trial % 8);
        let g = random_uniform_graph(n, 0.6, &mut rng);
        for alpha in [0.9, 0.3, 0.07, 0.013, 0.0021] {
            let truth = mule::naive::enumerate_naive(&g, alpha).unwrap();
            assert_eq!(
                mule::enumerate_maximal_cliques(&g, alpha).unwrap(),
                truth,
                "MULE trial={trial} α={alpha}"
            );
            assert_eq!(
                mule::dfs_noip::enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
                truth,
                "NOIP trial={trial} α={alpha}"
            );
        }
    }
}

#[test]
fn index_strategies_and_ordering_agree_on_larger_graphs() {
    let mut rng = SmallRng::seed_from_u64(7);
    for trial in 0..6 {
        let g = random_uniform_graph(60, 0.3, &mut rng);
        for alpha in [0.5, 0.05, 0.005] {
            let base = mule_with(&g, alpha, MuleConfig::default());
            for mode in [IndexMode::Always, IndexMode::Never] {
                let cfg = MuleConfig {
                    index_mode: mode,
                    ..Default::default()
                };
                assert_eq!(
                    mule_with(&g, alpha, cfg),
                    base,
                    "mode {mode:?} trial {trial}"
                );
            }
            let cfg = MuleConfig {
                degeneracy_order: true,
                ..Default::default()
            };
            assert_eq!(mule_with(&g, alpha, cfg), base, "degeneracy trial {trial}");
        }
    }
}

#[test]
fn large_mule_equals_filtered_output_randomized() {
    let mut rng = SmallRng::seed_from_u64(99);
    for trial in 0..20 {
        let n = 10 + trial % 10;
        let g = random_uniform_graph(n, 0.7, &mut rng);
        for alpha in [0.2, 0.02, 0.002] {
            let all = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
            for t in 2..=5 {
                let expected: Vec<Vec<VertexId>> =
                    all.iter().filter(|c| c.len() >= t).cloned().collect();
                let got = mule::enumerate_large_maximal_cliques(&g, alpha, t).unwrap();
                assert_eq!(got, expected, "trial={trial} α={alpha} t={t}");
            }
        }
    }
}

#[test]
fn tiny_alpha_recovers_deterministic_maximal_cliques() {
    // Every edge probability is ≥ MIN_PROB > 0, so for α below the product
    // of *all* edge probabilities every skeleton clique is an α-clique and
    // α-maximal cliques coincide with deterministic maximal cliques.
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..10 {
        let g = random_uniform_graph(14, 0.5, &mut rng);
        let floor = g
            .edges()
            .map(|(_, _, p)| p)
            .product::<f64>()
            .max(f64::MIN_POSITIVE);
        let alpha = (floor * 0.5).max(f64::MIN_POSITIVE);
        let skeleton = mule::deterministic::bron_kerbosch(&g);
        let uncertain = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
        assert_eq!(uncertain, skeleton);
    }
}

#[test]
fn alpha_one_equals_bron_kerbosch_on_certain_subgraph() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..10 {
        // Mix certain (p = 1) and uncertain edges.
        let mut b = GraphBuilder::new(12);
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if rng.gen::<f64>() < 0.5 {
                    let p = if rng.gen::<bool>() { 1.0 } else { 0.8 };
                    b.add_edge(u, v, p).unwrap();
                }
            }
        }
        let g = b.build();
        let certain = ugraph_core::subgraph::prune_below_alpha(&g, 1.0).unwrap();
        assert_eq!(
            mule::enumerate_maximal_cliques(&g, 1.0).unwrap(),
            mule::deterministic::bron_kerbosch(&certain)
        );
    }
}

#[test]
fn emitted_probabilities_match_oracle_for_every_algorithm() {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = random_uniform_graph(20, 0.5, &mut rng);
    let alpha = 0.01;
    let mut m = Mule::new(&g, alpha).unwrap();
    let mut sink = CollectSink::new();
    m.run(&mut sink);
    assert!(!sink.is_empty());
    for (c, p) in sink.into_pairs() {
        let exact = ugraph_core::clique::clique_probability(&g, &c).unwrap();
        assert!(
            (p - exact).abs() <= 1e-12 * exact.max(1.0),
            "{c:?}: {p} vs {exact}"
        );
    }
}
