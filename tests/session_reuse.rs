//! Session-reuse pin: a `Prepared` session built once must serve
//! `count()`, `collect()`, `top_k()` and `iter()` with the
//! preprocessing pipeline executed **exactly once** — the repeated-query
//! contract of the `Query`/`Prepared` redesign.
//!
//! The proof uses `mule::prepare::pipeline_invocations()`, a process-wide
//! monotone counter bumped by every pipeline execution. This file
//! deliberately contains a single `#[test]` (each integration-test file
//! is its own process), so no concurrent test can move the counter
//! between the captures.

use mule::prepare::pipeline_invocations;
use mule::Query;
use ugraph_core::builder::from_edges;

#[test]
fn one_prepare_serves_count_collect_topk_and_iter() {
    // Two triangles in separate components plus an isolated vertex: the
    // pipeline has real work to do (prune, shard, schedule), so "ran
    // once" is a meaningful claim.
    let g = from_edges(
        8,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (4, 5, 0.8),
            (5, 6, 0.8),
            (4, 6, 0.8),
        ],
    )
    .unwrap();

    let before = pipeline_invocations();
    let mut session = Query::new(&g).alpha(0.5).prepare().unwrap();
    assert_eq!(
        pipeline_invocations(),
        before + 1,
        "prepare() runs the pipeline exactly once"
    );
    let report = session.report().clone();

    let count = session.count().unwrap();
    let count_stats = *session.stats();
    let pairs = session.collect().unwrap();
    let top = session.top_k(2).unwrap();
    let pulled: Vec<_> = session.iter().collect();

    assert_eq!(
        pipeline_invocations(),
        before + 1,
        "count/collect/top_k/iter must not re-run any prepare stage"
    );
    assert_eq!(
        session.report(),
        &report,
        "the prepare report is fixed at prepare time"
    );

    // The queries agree with each other (same prepared state underneath).
    assert_eq!(count as usize, pairs.len());
    assert_eq!(pulled, pairs);
    assert_eq!(top.len(), 2);
    assert!(top[0].1 >= top[1].1);

    // Reruns do the same search work: count() twice yields equal stats.
    let c2 = session.count().unwrap();
    assert_eq!(c2, count);
    assert_eq!(session.stats(), &count_stats);
    assert_eq!(pipeline_invocations(), before + 1);

    // A new query (different α) is a new prepare — by construction.
    let _other = Query::new(&g).alpha(0.9).prepare().unwrap();
    assert_eq!(pipeline_invocations(), before + 2);
}
