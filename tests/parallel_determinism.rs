//! Parallel MULE determinism (satellite of PR 1, extended to the
//! work-stealing scheduler in PR 2).
//!
//! `par_enumerate_maximal_cliques` promises output *identical* to
//! sequential MULE — not just the same set of cliques, but the same
//! lexicographic order and bit-for-bit equal clique probabilities.
//! Since PR 2 the scheduler is work-stealing (per-worker deques seeded
//! largest-degree-first, idle workers stealing back halves), so which
//! worker runs which root — and in what order — varies run to run; the
//! per-root merge makes the output independent of the steal schedule by
//! construction. These properties drive random graphs through both
//! paths across α values and thread counts and compare byte-for-byte;
//! the skew test targets the hub-heavy shape where stealing actually
//! happens, and the stats property pins schedule-independence of the
//! merged counters (they must equal the sequential run's exactly).

use mule::par_enumerate_maximal_cliques;
use mule::sinks::CollectSink;
use mule::Mule;
use proptest::prelude::*;
use ugraph_core::{GraphBuilder, UncertainGraph};

/// Random graph strategy: `n` vertices, Bernoulli(density) edges with
/// probabilities dense in `(0, 1]`.
fn arb_graph(max_n: usize) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_n, any::<u64>(), 0.1f64..0.9).prop_map(|(n, seed, density)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < density {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                }
            }
        }
        b.build()
    })
}

/// Sequential MULE as (clique, probability) pairs in emission order
/// sorted lexicographically — the exact shape `ParallelOutput` promises.
fn sequential_pairs(g: &UncertainGraph, alpha: f64) -> Vec<(Vec<u32>, f64)> {
    let mut m = Mule::new(g, alpha).unwrap();
    let mut sink = CollectSink::new();
    m.run(&mut sink);
    let mut pairs = sink.into_pairs();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_output_is_byte_identical_to_sequential(
        g in arb_graph(14),
        alpha_pow in 1u32..=12,
        threads in 1usize..=8,
    ) {
        let alpha = 0.5f64.powi(alpha_pow as i32);
        let expected = sequential_pairs(&g, alpha);
        let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();

        // Same cliques in the same order…
        let got: Vec<&Vec<u32>> = out.cliques.iter().collect();
        let want: Vec<&Vec<u32>> = expected.iter().map(|(c, _)| c).collect();
        prop_assert_eq!(got, want, "clique lists differ (threads={})", threads);

        // …and bit-for-bit equal probabilities (not just within epsilon).
        prop_assert_eq!(out.probs.len(), expected.len());
        for (i, (p_par, (c, p_seq))) in out.probs.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                p_par.to_bits(), p_seq.to_bits(),
                "prob bits differ at {} for {:?}: {} vs {}", i, c, p_par, p_seq
            );
        }
    }

    #[test]
    fn thread_count_never_changes_output(
        g in arb_graph(12),
        alpha in 0.01f64..0.9,
    ) {
        let baseline = par_enumerate_maximal_cliques(&g, alpha, 1).unwrap();
        for threads in [2, 3, 5, 8] {
            let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
            prop_assert_eq!(&out.cliques, &baseline.cliques, "threads={}", threads);
            let bits: Vec<u64> = out.probs.iter().map(|p| p.to_bits()).collect();
            let base_bits: Vec<u64> = baseline.probs.iter().map(|p| p.to_bits()).collect();
            prop_assert_eq!(bits, base_bits, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_stats_account_for_all_emissions(
        g in arb_graph(12),
        alpha_pow in 1u32..=8,
        threads in 1usize..=6,
    ) {
        let alpha = 0.5f64.powi(alpha_pow as i32);
        let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
        prop_assert_eq!(out.stats.emitted as usize, out.cliques.len());
    }

    #[test]
    fn merged_stats_equal_sequential_regardless_of_schedule(
        g in arb_graph(13),
        alpha in 0.01f64..0.9,
        threads in 1usize..=8,
    ) {
        // Every root subtree contributes the same counters no matter
        // which worker explores it, so the merged statistics must be
        // *equal* to sequential MULE's — a strong pin on the
        // work-stealing scheduler doing no duplicated or dropped work.
        let mut m = Mule::new(&g, alpha).unwrap();
        let mut sink = mule::sinks::CountSink::new();
        m.run(&mut sink);
        let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
        prop_assert_eq!(&out.stats, m.stats(), "threads={}", threads);
    }

    #[test]
    fn skewed_hubs_are_byte_identical_across_thread_counts(
        hub_degree in 10usize..=25,
        seed in any::<u64>(),
        alpha in 0.05f64..0.5,
    ) {
        // Hub-heavy graphs are where subtree costs skew and stealing
        // actually fires; the output must not care.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = hub_degree + 8;
        let mut b = GraphBuilder::new(n);
        for v in 1..=hub_degree as u32 {
            b.add_edge(0, v, 0.9 + 0.1 * rng.gen::<f64>()).unwrap();
        }
        for u in 1..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < 0.25 {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.5).unwrap();
                }
            }
        }
        let g = b.build();
        let expected = sequential_pairs(&g, alpha);
        for threads in [1usize, 2, 4, 8] {
            let out = par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
            let got: Vec<(Vec<u32>, u64)> =
                out.cliques.into_iter().zip(out.probs.iter().map(|p| p.to_bits())).collect();
            let want: Vec<(Vec<u32>, u64)> =
                expected.iter().map(|(c, p)| (c.clone(), p.to_bits())).collect();
            prop_assert_eq!(got, want, "threads={}", threads);
        }
    }
}
