//! Crash-at-every-boundary battery (tentpole proof of the robustness
//! PR): a save interrupted by an injected IO fault at **every byte
//! boundary** must leave the catalog either the complete old file or
//! the complete new file — never a half-state, and never a panic.
//!
//! For each plan in {`fail-at:N`, `enospc:N`, `crash-after:N`} × every
//! cut point `N` over the payload of `Prepared::save` (and a coarser
//! sweep over `Base::save`):
//!
//! * the save returns a typed [`MuleError::Io`];
//! * the bytes at the final path are untouched (byte-identical to the
//!   pre-fault catalog) — checked at *every* cut;
//! * reopening serves the old answers bit-for-bit — checked at sampled
//!   cuts (byte-identity of the file already implies it; the samples
//!   pin the end-to-end path);
//! * non-crash plans leave no temp file; `crash-after` deliberately
//!   leaves the orphan a real power cut would, and the next open
//!   removes it.
//!
//! `short-writes:K` must *succeed* byte-identically (a correct writer
//! loops), and `fsync-fail` must fail without touching the old file.
//!
//! `CRASH_BATTERY_STRIDE` (default 1 = exhaustive) coarsens the cut
//! sweep for quick tiers; the CI chaos step sets it.

use mule::{MuleError, Prepared, Query};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};
use ugraph_io::fault::{self, FaultPlan};

fn random_graph(seed: u64, n: usize, density: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

/// Everything observable about a session, with exact probability bits.
fn observe(s: &mut Prepared) -> (u64, Vec<(Vec<VertexId>, u64)>) {
    let pairs = s
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    (s.count().unwrap(), pairs)
}

fn battery_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ugq-crash-battery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn stride() -> usize {
    std::env::var("CRASH_BATTERY_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// One faulted save: assert the typed error, the untouched final file,
/// the temp-file contract of the plan, and (when `deep`) that a real
/// reopen still serves the old answers.
#[allow(clippy::too_many_arguments)]
fn assert_save_dies_cleanly(
    plan: FaultPlan,
    save: &dyn Fn(&Path) -> Result<(), MuleError>,
    path: &Path,
    old_bytes: &[u8],
    old_answers: &(u64, Vec<(Vec<VertexId>, u64)>),
    deep: bool,
) {
    let fired_before = fault::faults_fired();
    fault::arm(plan);
    let outcome = save(path);
    fault::disarm();
    let err = outcome.unwrap_err_or_panic(plan);
    assert!(
        matches!(err, MuleError::Io(_)),
        "{plan:?}: fault must surface as a typed IO error, got {err}"
    );
    assert!(
        fault::faults_fired() > fired_before,
        "{plan:?}: the armed fault never fired"
    );

    let on_disk = std::fs::read(path).expect("final path must survive a failed save");
    assert_eq!(
        on_disk, old_bytes,
        "{plan:?}: failed save altered the committed catalog"
    );

    let tmp = fault::tmp_path(path);
    match plan {
        FaultPlan::CrashAfterPrefix(_) => assert!(
            tmp.exists(),
            "{plan:?}: a crash must leave its orphan temp file"
        ),
        _ => assert!(
            !tmp.exists(),
            "{plan:?}: non-crash failures must clean their temp file"
        ),
    }

    if deep {
        let mut reopened = Query::open(path).expect("old catalog must reopen after a failed save");
        assert!(
            !tmp.exists(),
            "{plan:?}: open must clean the orphan temp file"
        );
        assert_eq!(
            &observe(&mut reopened),
            old_answers,
            "{plan:?}: reopened catalog must serve the old answers"
        );
    } else if matches!(plan, FaultPlan::CrashAfterPrefix(_)) {
        // Keep the fixture clean for the next cut without paying for a
        // full open at every boundary.
        fault::cleanup_orphan(path);
    }
}

/// Small helper so a panic inside `save` reads as a battery failure
/// with the offending plan, not a bare unwrap message.
trait OrPanic {
    fn unwrap_err_or_panic(self, plan: FaultPlan) -> MuleError;
}
impl OrPanic for Result<(), MuleError> {
    fn unwrap_err_or_panic(self, plan: FaultPlan) -> MuleError {
        match self {
            Err(e) => e,
            Ok(()) => panic!("{plan:?}: save must fail under an injected fault"),
        }
    }
}

#[test]
fn prepared_save_survives_a_fault_at_every_byte_boundary() {
    let dir = battery_dir("prepared");
    let path = dir.join("catalog.ugq");

    let g_old = random_graph(3, 11, 0.3);
    let old = Query::new(&g_old).alpha(0.5).prepare().unwrap();
    old.save(&path).unwrap();
    let old_bytes = std::fs::read(&path).unwrap();
    let old_answers = observe(&mut Query::open(&path).unwrap());

    let g_new = random_graph(7, 12, 0.35);
    let new = Query::new(&g_new).alpha(0.25).prepare().unwrap();
    // Reference bytes of an unfaulted save of the replacement catalog.
    let ref_path = dir.join("reference.ugq");
    new.save(&ref_path).unwrap();
    let new_bytes = std::fs::read(&ref_path).unwrap();
    assert_ne!(new_bytes, old_bytes, "fixtures must actually differ");
    let len = new_bytes.len();
    assert!(len > 256, "fixture too small for a meaningful sweep: {len}");
    let save = |p: &Path| new.save(p);

    let step = stride();
    let mut cuts_swept = 0usize;
    for cut in (0..len).step_by(step) {
        // Deep-reopen at the edges and every 64 strides; byte-compare
        // (as strong, already covered by the round-trip suite) at all.
        let deep = cut == 0 || cut + step >= len || (cut / step).is_multiple_of(64);
        for plan in [
            FaultPlan::FailAtByte(cut as u64),
            FaultPlan::Enospc(cut as u64),
            FaultPlan::CrashAfterPrefix(cut as u64),
        ] {
            assert_save_dies_cleanly(plan, &save, &path, &old_bytes, &old_answers, deep);
        }
        cuts_swept += 1;
    }
    assert!(cuts_swept > 0, "battery swept no cut points");

    // A crash *past* the payload end: every write succeeded, the death
    // lands between the last write and the rename. Old must survive.
    assert_save_dies_cleanly(
        FaultPlan::CrashAfterPrefix(len as u64 + 1),
        &save,
        &path,
        &old_bytes,
        &old_answers,
        true,
    );
    // Fsync of the temp file fails: same contract as a failed write.
    assert_save_dies_cleanly(
        FaultPlan::FsyncFail,
        &save,
        &path,
        &old_bytes,
        &old_answers,
        true,
    );

    // Short writes are not a fault: the writer loops, the save
    // completes, and the committed bytes are identical to an unfaulted
    // save — for pathological (1), odd (7), and chunk-sized strides.
    for k in [1usize, 7, 4096] {
        fault::arm(FaultPlan::ShortWrites(k));
        let outcome = save(&path);
        fault::disarm();
        outcome.unwrap_or_else(|e| panic!("short-writes:{k} must succeed: {e}"));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            new_bytes,
            "short-writes:{k}: committed bytes must be identical to an unfaulted save"
        );
        // Restore the old catalog for the next battery step.
        std::fs::write(&path, &old_bytes).unwrap();
    }

    // After the whole battery, a clean save commits and reopens.
    save(&path).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), new_bytes);
    let reopened_answers = observe(&mut Query::open(&path).unwrap());
    let mut fresh = Query::new(&g_new).alpha(0.25).prepare().unwrap();
    assert_eq!(reopened_answers, observe(&mut fresh));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn base_save_survives_faulted_boundaries() {
    let dir = battery_dir("base");
    let path = dir.join("base.ugq");

    let g_old = random_graph(11, 10, 0.3);
    let old = Query::new(&g_old).prepare_base().unwrap();
    old.save(&path).unwrap();
    let old_bytes = std::fs::read(&path).unwrap();
    let old_answers = observe(&mut Query::open_base(&path).unwrap().refine(0.5).unwrap());

    let g_new = random_graph(13, 11, 0.35);
    let new = Query::new(&g_new).prepare_base().unwrap();
    let ref_path = dir.join("reference.ugq");
    new.save(&ref_path).unwrap();
    let new_bytes = std::fs::read(&ref_path).unwrap();
    assert_ne!(new_bytes, old_bytes, "fixtures must actually differ");
    let len = new_bytes.len();

    // The base sweep is coarser (8× the prepared stride): the atomic
    // writer under test is the same seam, already swept exhaustively
    // above; this pins that `Base::save` goes through it.
    let step = stride() * 8;
    for cut in (0..len).step_by(step) {
        let deep = cut == 0 || cut + step >= len;
        for plan in [
            FaultPlan::FailAtByte(cut as u64),
            FaultPlan::Enospc(cut as u64),
            FaultPlan::CrashAfterPrefix(cut as u64),
        ] {
            let fired_before = fault::faults_fired();
            fault::arm(plan);
            let outcome = new.save(&path);
            fault::disarm();
            let err = outcome.unwrap_err_or_panic(plan);
            assert!(matches!(err, MuleError::Io(_)), "{plan:?}: {err}");
            assert!(fault::faults_fired() > fired_before, "{plan:?}: no fire");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                old_bytes,
                "{plan:?}: failed base save altered the committed catalog"
            );
            if deep {
                let base = Query::open_base(&path).expect("old base must reopen");
                assert!(
                    !fault::tmp_path(&path).exists(),
                    "{plan:?}: open_base must clean the orphan temp file"
                );
                assert_eq!(
                    observe(&mut base.refine(0.5).unwrap()),
                    old_answers,
                    "{plan:?}: reopened base must serve the old answers"
                );
            } else {
                fault::cleanup_orphan(&path);
            }
        }
    }

    // Clean save commits; refined answers match a fresh base.
    new.save(&path).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), new_bytes);
    let got = observe(&mut Query::open_base(&path).unwrap().refine(0.25).unwrap());
    let mut fresh = Query::new(&g_new).alpha(0.25).prepare().unwrap();
    assert_eq!(got, observe(&mut fresh));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A crashed *first* save (no prior catalog): the final path must not
/// exist, opening it is a typed IO error, and the orphan temp is gone
/// after the open attempt — the fresh-directory half of recovery.
#[test]
fn crashed_first_save_leaves_no_catalog_and_open_recovers() {
    let dir = battery_dir("first");
    let path = dir.join("never-committed.ugq");

    let g = random_graph(17, 10, 0.3);
    let prepared = Query::new(&g).alpha(0.5).prepare().unwrap();
    fault::arm(FaultPlan::CrashAfterPrefix(64));
    let err = prepared.save(&path).unwrap_err();
    fault::disarm();
    assert!(matches!(err, MuleError::Io(_)), "{err}");
    assert!(!path.exists(), "a crashed first save must not commit");
    assert!(
        fault::tmp_path(&path).exists(),
        "the crash leaves its orphan"
    );

    match Query::open(&path) {
        Err(MuleError::Io(_)) => {}
        Err(other) => panic!("opening a never-committed path: {other}"),
        Ok(_) => panic!("opening a never-committed path must fail"),
    }
    assert!(
        !fault::tmp_path(&path).exists(),
        "the failed open must still clean the orphan"
    );

    // The retry after the "reboot" succeeds and serves the answers.
    prepared.save(&path).unwrap();
    let mut reopened = Query::open(&path).unwrap();
    let mut fresh = Query::new(&g).alpha(0.5).prepare().unwrap();
    assert_eq!(observe(&mut reopened), observe(&mut fresh));

    let _ = std::fs::remove_dir_all(&dir);
}

/// First vertex pair with no edge in `g` — a representable insert.
fn absent_pair(g: &UncertainGraph) -> (u32, u32) {
    let n = g.num_vertices() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            if g.edge_prob_raw(u, v).is_none() {
                return (u, v);
            }
        }
    }
    panic!("fixture graph is complete");
}

/// A delta append interrupted at **every byte boundary** must leave the
/// committed catalog byte-identical — the pending batch simply never
/// happened — and a clean retry must commit the exact reference bytes.
#[test]
fn delta_append_survives_a_fault_at_every_byte_boundary() {
    let dir = battery_dir("delta-append");
    let path = dir.join("catalog.ugq");

    let g = random_graph(19, 11, 0.3);
    let prepared = Query::new(&g).alpha(0.4).prepare().unwrap();
    prepared.save(&path).unwrap();
    let old_bytes = std::fs::read(&path).unwrap();
    let old_answers = observe(&mut Query::open(&path).unwrap());

    // An always-representable batch: insert the first absent pair.
    let (bu, bv) = absent_pair(&g);
    let delta = mule::GraphDelta::new().insert(bu, bv, 0.9);

    // Reference bytes of an unfaulted append.
    let ref_path = dir.join("reference.ugq");
    std::fs::write(&ref_path, &old_bytes).unwrap();
    assert_eq!(mule::catalog::append_delta(&ref_path, &delta).unwrap(), 1);
    let new_bytes = std::fs::read(&ref_path).unwrap();
    assert_ne!(new_bytes, old_bytes);
    let len = new_bytes.len();

    let append = |p: &Path| mule::catalog::append_delta(p, &delta).map(|_| ());
    let step = stride();
    for cut in (0..len).step_by(step) {
        let deep = cut == 0 || cut + step >= len || (cut / step).is_multiple_of(64);
        for plan in [
            FaultPlan::FailAtByte(cut as u64),
            FaultPlan::Enospc(cut as u64),
            FaultPlan::CrashAfterPrefix(cut as u64),
        ] {
            assert_save_dies_cleanly(plan, &append, &path, &old_bytes, &old_answers, deep);
        }
    }
    // Death between the last write and the rename.
    assert_save_dies_cleanly(
        FaultPlan::CrashAfterPrefix(len as u64 + 1),
        &append,
        &path,
        &old_bytes,
        &old_answers,
        true,
    );
    assert_save_dies_cleanly(
        FaultPlan::FsyncFail,
        &append,
        &path,
        &old_bytes,
        &old_answers,
        true,
    );

    // The clean retry commits the reference image and replays on open.
    assert_eq!(mule::catalog::append_delta(&path, &delta).unwrap(), 1);
    assert_eq!(std::fs::read(&path).unwrap(), new_bytes);
    assert_eq!(mule::catalog::pending_deltas(&path).unwrap(), 1);
    let mut g2 = ugraph_core::GraphBuilder::new(g.num_vertices());
    for u in 0..g.num_vertices() as u32 {
        for v in (u + 1)..g.num_vertices() as u32 {
            if let Some(p) = g.edge_prob_raw(u, v) {
                g2.add_edge(u, v, p).unwrap();
            }
        }
    }
    g2.add_edge(bu, bv, 0.9).unwrap();
    let mut fresh = Query::new(&g2.build()).alpha(0.4).prepare().unwrap();
    assert_eq!(
        observe(&mut Query::open(&path).unwrap()),
        observe(&mut fresh),
        "reopen-with-pending-delta must serve the mutated graph"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction interrupted at every (strided) byte boundary: the file
/// keeps its pending `delta.{i}` sections — still replayable, answers
/// unchanged — and the clean retry folds them byte-exactly.
#[test]
fn compaction_survives_faulted_boundaries() {
    let dir = battery_dir("compact");
    let path = dir.join("catalog.ugq");

    let g = random_graph(23, 11, 0.3);
    let (bu, bv) = absent_pair(&g);
    Query::new(&g)
        .alpha(0.4)
        .prepare()
        .unwrap()
        .save(&path)
        .unwrap();
    let d0 = mule::GraphDelta::new().insert(bu, bv, 0.9);
    let d1 = mule::GraphDelta::new().set_prob(bu, bv, 0.7);
    assert_eq!(mule::catalog::append_delta(&path, &d0).unwrap(), 1);
    assert_eq!(mule::catalog::append_delta(&path, &d1).unwrap(), 2);
    let old_bytes = std::fs::read(&path).unwrap();
    let old_answers = observe(&mut Query::open(&path).unwrap());

    let ref_path = dir.join("reference.ugq");
    std::fs::write(&ref_path, &old_bytes).unwrap();
    assert_eq!(mule::catalog::compact(&ref_path).unwrap(), 2);
    let new_bytes = std::fs::read(&ref_path).unwrap();
    assert_ne!(new_bytes, old_bytes);
    let len = new_bytes.len();

    let compact = |p: &Path| mule::catalog::compact(p).map(|_| ());
    // Coarser sweep, same seam as the exhaustive append battery above.
    let step = stride() * 8;
    for cut in (0..len).step_by(step) {
        let deep = cut == 0 || cut + step >= len;
        assert_save_dies_cleanly(
            FaultPlan::FailAtByte(cut as u64),
            &compact,
            &path,
            &old_bytes,
            &old_answers,
            deep,
        );
        assert_save_dies_cleanly(
            FaultPlan::CrashAfterPrefix(cut as u64),
            &compact,
            &path,
            &old_bytes,
            &old_answers,
            deep,
        );
        // A faulted compaction must leave the deltas pending.
        assert_eq!(mule::catalog::pending_deltas(&path).unwrap(), 2);
    }

    // The clean retry folds both batches; the file is byte-identical to
    // the reference fold AND to a fresh save of a fresh prepare of the
    // mutated graph; a second compact is a no-op.
    assert_eq!(mule::catalog::compact(&path).unwrap(), 2);
    assert_eq!(std::fs::read(&path).unwrap(), new_bytes);
    assert_eq!(mule::catalog::pending_deltas(&path).unwrap(), 0);
    let mut g2 = ugraph_core::GraphBuilder::new(g.num_vertices());
    for u in 0..g.num_vertices() as u32 {
        for v in (u + 1)..g.num_vertices() as u32 {
            if let Some(p) = g.edge_prob_raw(u, v) {
                g2.add_edge(u, v, p).unwrap();
            }
        }
    }
    g2.add_edge(bu, bv, 0.7).unwrap();
    let fresh_path = dir.join("fresh.ugq");
    Query::new(&g2.build())
        .alpha(0.4)
        .prepare()
        .unwrap()
        .save(&fresh_path)
        .unwrap();
    assert_eq!(
        std::fs::read(&fresh_path).unwrap(),
        new_bytes,
        "compaction must be byte-identical to a fresh save of the mutated graph"
    );
    assert_eq!(mule::catalog::compact(&path).unwrap(), 0);
    assert_eq!(std::fs::read(&path).unwrap(), new_bytes);

    let _ = std::fs::remove_dir_all(&dir);
}
