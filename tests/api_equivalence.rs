//! Session-API equivalence pins (satellite of the `Query`/`Prepared`
//! redesign): the builder path must be **byte-identical** — same
//! cliques, same order, same probability bits, equal stats — to every
//! legacy free-function entry point it now fronts, across α ×
//! `min_size` × threads × index mode × top-k. Seeded random graphs plus
//! structured edge cases, in the same property-test style as
//! `tests/pipeline_equality.rs`.

use mule::{Engine, IndexMode, MuleError, Query};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

fn random_graph(seed: u64, n: usize, density: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

/// `(clique, prob bits)` — the byte-comparison currency.
type Pairs = Vec<(Vec<VertexId>, u64)>;

fn bits(pairs: Vec<(Vec<VertexId>, f64)>) -> Pairs {
    pairs.into_iter().map(|(c, p)| (c, p.to_bits())).collect()
}

const ALPHAS: [f64; 4] = [0.9, 0.5, 0.1, 0.01];

/// Builder `collect`/`count` vs the legacy wrappers, plus the pull
/// iterator, on the default configuration.
#[test]
fn collect_count_and_iter_match_legacy_wrappers() {
    for seed in 0..12u64 {
        let density = [0.1, 0.25, 0.5][(seed % 3) as usize];
        let g = random_graph(seed, 13 + (seed % 5) as usize, density);
        for alpha in ALPHAS {
            let mut s = Query::new(&g).alpha(alpha).prepare().unwrap();
            let pairs = s.collect().unwrap();
            let seq_stats = *s.stats();

            let legacy = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
            let mut from_builder: Vec<Vec<VertexId>> =
                pairs.iter().map(|(c, _)| c.clone()).collect();
            from_builder.sort();
            assert_eq!(from_builder, legacy, "seed={seed} α={alpha} (collect)");

            assert_eq!(
                s.count().unwrap(),
                mule::count_maximal_cliques(&g, alpha).unwrap(),
                "seed={seed} α={alpha} (count)"
            );
            assert_eq!(
                s.stats(),
                &seq_stats,
                "seed={seed} α={alpha}: count re-did different work than collect"
            );

            let pulled: Vec<_> = s.iter().collect();
            assert_eq!(
                bits(pulled),
                bits(pairs),
                "seed={seed} α={alpha} (pull iterator)"
            );
            assert_eq!(
                s.stats(),
                &seq_stats,
                "seed={seed} α={alpha}: iterator stats drifted"
            );
        }
    }
}

/// `min_size` through the builder vs `enumerate_large_maximal_cliques`
/// and the pair-returning `enumerate_prepared` (probability bits too).
#[test]
fn min_size_matches_legacy_large_and_prepared() {
    for seed in 0..10u64 {
        let g = random_graph(100 + seed, 12 + (seed % 4) as usize, 0.4);
        for alpha in ALPHAS {
            for t in 2..=5usize {
                let mut s = Query::new(&g).alpha(alpha).min_size(t).prepare().unwrap();
                let mut pairs = bits(s.collect().unwrap());
                pairs.sort();

                let legacy: Vec<Vec<VertexId>> =
                    mule::enumerate_large_maximal_cliques(&g, alpha, t).unwrap();
                let got: Vec<Vec<VertexId>> = pairs.iter().map(|(c, _)| c.clone()).collect();
                assert_eq!(got, legacy, "seed={seed} α={alpha} t={t} (large)");

                let prepared = bits(mule::prepare::enumerate_prepared(&g, alpha, t).unwrap());
                assert_eq!(pairs, prepared, "seed={seed} α={alpha} t={t} (prepared)");
            }
        }
    }
}

/// `threads` through the builder vs `par_enumerate_maximal_cliques`:
/// same stream, same probability bits, equal merged stats — and both
/// equal the sequential session.
#[test]
fn threads_match_legacy_parallel_wrapper() {
    for seed in 0..6u64 {
        let g = random_graph(200 + seed, 15, 0.3);
        for alpha in [0.5, 0.05] {
            let mut seq = Query::new(&g).alpha(alpha).prepare().unwrap();
            let seq_pairs = bits(seq.collect().unwrap());
            for threads in [2usize, 4] {
                let mut s = Query::new(&g)
                    .alpha(alpha)
                    .threads(threads)
                    .prepare()
                    .unwrap();
                let pairs = bits(s.collect().unwrap());
                assert_eq!(pairs, seq_pairs, "seed={seed} α={alpha} threads={threads}");

                let legacy = mule::par_enumerate_maximal_cliques(&g, alpha, threads).unwrap();
                let legacy_pairs: Pairs = legacy
                    .cliques
                    .into_iter()
                    .zip(legacy.probs.iter().map(|p| p.to_bits()))
                    .collect();
                assert_eq!(
                    pairs, legacy_pairs,
                    "seed={seed} α={alpha} threads={threads} (legacy)"
                );
                assert_eq!(
                    s.stats(),
                    &legacy.stats,
                    "seed={seed} α={alpha} threads={threads} (stats)"
                );
                assert_eq!(
                    s.stats(),
                    seq.stats(),
                    "seed={seed} α={alpha} threads={threads} (vs sequential)"
                );
            }
        }
    }
}

/// Index mode and dense-budget knobs are output-neutral through the
/// builder, exactly as they are through `MuleConfig`.
#[test]
fn index_modes_are_output_neutral() {
    for seed in 0..6u64 {
        let g = random_graph(300 + seed, 14, 0.35);
        for alpha in [0.5, 0.1] {
            let mut reference = Query::new(&g).alpha(alpha).prepare().unwrap();
            let want = bits(reference.collect().unwrap());
            for (mode, budget) in [
                (IndexMode::Always, usize::MAX),
                (IndexMode::Always, 0),
                (IndexMode::Never, 4 << 20),
                (IndexMode::Auto, 0),
            ] {
                let mut s = Query::new(&g)
                    .alpha(alpha)
                    .index_mode(mode)
                    .dense_index_bytes(budget)
                    .prepare()
                    .unwrap();
                assert_eq!(
                    bits(s.collect().unwrap()),
                    want,
                    "seed={seed} α={alpha} mode={mode:?} budget={budget}"
                );
            }
        }
    }
}

/// `Prepared::top_k` vs both legacy top-k variants (which must also
/// agree with each other), bits included.
#[test]
fn top_k_matches_both_legacy_variants() {
    for seed in 0..8u64 {
        let g = random_graph(400 + seed, 12, 0.45);
        for alpha in [0.5, 0.1, 0.01] {
            let mut s = Query::new(&g).alpha(alpha).prepare().unwrap();
            for k in [1usize, 3, 8] {
                let got = bits(s.top_k(k).unwrap());
                let exhaustive = bits(mule::topk::top_k_maximal_cliques(&g, alpha, k).unwrap());
                let pruned = bits(mule::topk::top_k_maximal_cliques_pruned(&g, alpha, k).unwrap());
                assert_eq!(got, exhaustive, "seed={seed} α={alpha} k={k} (exhaustive)");
                assert_eq!(got, pruned, "seed={seed} α={alpha} k={k} (pruned)");
            }
        }
    }
}

/// The NOIP engine through the builder vs both legacy NOIP wrappers.
#[test]
fn noip_engine_matches_legacy_noip_wrappers() {
    for seed in 0..6u64 {
        let g = random_graph(500 + seed, 11, 0.3);
        for alpha in [0.5, 0.1] {
            let mut s = Query::new(&g)
                .alpha(alpha)
                .engine(Engine::Noip)
                .prepare()
                .unwrap();
            let mut got: Vec<Vec<VertexId>> =
                s.collect().unwrap().into_iter().map(|(c, _)| c).collect();
            got.sort();
            assert_eq!(
                got,
                mule::dfs_noip::enumerate_maximal_cliques_noip_prepared(&g, alpha).unwrap(),
                "seed={seed} α={alpha} (prepared wrapper)"
            );
            assert_eq!(
                got,
                mule::dfs_noip::enumerate_maximal_cliques_noip(&g, alpha).unwrap(),
                "seed={seed} α={alpha} (direct wrapper)"
            );
        }
    }
}

/// The NOIP engine with a size threshold: the core-filter/peel stages
/// plus the emission filter must reproduce exactly the legacy
/// LARGE-MULE answer set on non-trivial graphs.
#[test]
fn noip_engine_with_min_size_matches_legacy_large() {
    for seed in 0..5u64 {
        let g = random_graph(600 + seed, 11, 0.45);
        for alpha in [0.5, 0.1] {
            for t in 2..=4usize {
                let mut s = Query::new(&g)
                    .alpha(alpha)
                    .engine(Engine::Noip)
                    .min_size(t)
                    .prepare()
                    .unwrap();
                let mut got: Vec<Vec<VertexId>> =
                    s.collect().unwrap().into_iter().map(|(c, _)| c).collect();
                got.sort();
                assert_eq!(
                    got,
                    mule::enumerate_large_maximal_cliques(&g, alpha, t).unwrap(),
                    "seed={seed} α={alpha} t={t}"
                );
            }
        }
    }
}

/// Builder validation is eager and typed: every rejection happens at
/// `prepare()` (or at the `top_k` call for `k = 0`), with the variant
/// naming the mistake.
#[test]
fn builder_validation_is_eager_and_typed() {
    let g = random_graph(77, 8, 0.5);
    assert!(matches!(
        Query::new(&g).prepare(),
        Err(MuleError::AlphaNotSet)
    ));
    assert!(matches!(
        Query::new(&g).alpha(0.4).threads(0).prepare(),
        Err(MuleError::ZeroThreads)
    ));
    for bad_alpha in [0.0, -1.0, 1.01, f64::NAN] {
        assert!(
            matches!(
                Query::new(&g).alpha(bad_alpha).prepare(),
                Err(MuleError::Graph(_))
            ),
            "α={bad_alpha} must be rejected at prepare()"
        );
    }
    let mut s = Query::new(&g).alpha(0.4).prepare().unwrap();
    assert!(matches!(s.top_k(0), Err(MuleError::ZeroTopK)));
    // The session survives a rejected query.
    assert!(!s.top_k(1).unwrap().is_empty());
}

/// Structured edge cases through every execution method: empty graph,
/// edgeless graph, disconnected components with interleaved ids.
#[test]
fn structured_graphs_agree_across_methods() {
    let mut cases: Vec<UncertainGraph> =
        vec![GraphBuilder::new(0).build(), GraphBuilder::new(4).build()];
    {
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 4), (4, 8), (0, 8)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        for (u, v) in [(1, 5), (5, 9), (1, 9)] {
            b.add_edge(u, v, 0.7).unwrap();
        }
        cases.push(b.build());
    }
    for (i, g) in cases.iter().enumerate() {
        for alpha in [0.5, 0.1] {
            let mut s = Query::new(g).alpha(alpha).prepare().unwrap();
            let pairs = s.collect().unwrap();
            let legacy = mule::enumerate_maximal_cliques(g, alpha).unwrap();
            let got: Vec<Vec<VertexId>> = pairs.iter().map(|(c, _)| c.clone()).collect();
            assert_eq!(got, legacy, "case={i} α={alpha}");
            assert_eq!(
                s.count().unwrap() as usize,
                pairs.len(),
                "case={i} α={alpha}"
            );
            let pulled: Vec<_> = s.iter().collect();
            assert_eq!(pulled, pairs, "case={i} α={alpha} (iter)");
        }
    }
}
