//! Counting-allocator regression test (satellite of PR 2): the arena
//! kernel promises **zero heap allocations per search node in steady
//! state** — after a first run has grown the arenas and scratch buffers
//! to the deepest path, a rerun on the same enumerator instance must not
//! touch the allocator at all when the sink doesn't allocate either.
//!
//! The whole test binary runs under a counting wrapper around the system
//! allocator (a `#[global_allocator]` is process-wide, which is why this
//! lives in its own integration-test crate). The enumeration crates are
//! `forbid(unsafe_code)`; the `unsafe` here is the unavoidable
//! `GlobalAlloc` plumbing of the *test harness*, delegating straight to
//! `std::alloc::System`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point (alloc/realloc both count: a
/// realloc in the hot path is still an allocator round-trip).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocator entries during `f`, after `f`'s own warm-up has happened.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// A seeded graph big enough to recurse several levels and hit both the
/// emitting-leaf and dead-end paths.
fn dense_fixture() -> ugraph_core::UncertainGraph {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 60u32;
    let mut b = ugraph_core::GraphBuilder::new(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < 0.4 {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.5).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn mule_steady_state_rerun_allocates_nothing() {
    let g = dense_fixture();
    for mode in [mule::IndexMode::Always, mule::IndexMode::Never] {
        let cfg = mule::MuleConfig {
            index_mode: mode,
            ..Default::default()
        };
        let mut m = mule::Mule::with_config(&g, 0.05, cfg).unwrap();
        let mut warm = mule::sinks::CountSink::new();
        m.run(&mut warm); // grows arenas + clique buffer to the deepest path
        assert!(warm.count > 50, "fixture too easy: {} cliques", warm.count);
        let mut sink = mule::sinks::CountSink::new();
        let (allocs, _) = allocations_during(|| m.run(&mut sink));
        assert_eq!(
            allocs, 0,
            "steady-state MULE rerun allocated {allocs} times (mode {mode:?})"
        );
        assert_eq!(sink.count, warm.count);
    }
}

#[test]
fn large_mule_steady_state_rerun_allocates_nothing() {
    let g = dense_fixture();
    let mut lm = mule::LargeMule::new(&g, 0.05, 4).unwrap();
    let mut warm = mule::sinks::CountSink::new();
    lm.run(&mut warm);
    assert!(warm.count > 0);
    let mut sink = mule::sinks::CountSink::new();
    let (allocs, _) = allocations_during(|| lm.run(&mut sink));
    assert_eq!(
        allocs, 0,
        "steady-state LARGE-MULE rerun allocated {allocs} times"
    );
    assert_eq!(sink.count, warm.count);
}

#[test]
fn dfs_noip_steady_state_rerun_allocates_nothing() {
    // Smaller input: the baseline is exponentially slower by design.
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(3);
    let mut b = ugraph_core::GraphBuilder::new(18);
    for u in 0..18u32 {
        for v in (u + 1)..18 {
            if rng.gen::<f64>() < 0.5 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
    }
    let g = b.build();
    let mut d = mule::DfsNoip::new(&g, 0.3).unwrap();
    let mut warm = mule::sinks::CountSink::new();
    d.run(&mut warm);
    assert!(warm.count > 0);
    let mut sink = mule::sinks::CountSink::new();
    let (allocs, _) = allocations_during(|| d.run(&mut sink));
    assert_eq!(
        allocs, 0,
        "steady-state DFS-NOIP rerun allocated {allocs} times"
    );
    assert_eq!(sink.count, warm.count);
}

#[test]
fn prepared_pipeline_steady_state_rerun_allocates_nothing() {
    // The pipelined path (PreparedInstance::run over per-component
    // kernels) must keep the steady-state guarantee with the tiered
    // index in every configuration: dense rows engaged (the planted
    // high-id hub clears both the absolute and the relative
    // hub-over-mean dense floors), bitset tier only, and index-free
    // (gallop/merge). The index is built once at prepare time, so a
    // rerun touches the allocator zero times.
    let g = {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 48u32;
        let mut b = ugraph_core::GraphBuilder::new(n as usize);
        for v in 0..32u32 {
            b.add_edge(n - 1, v, 0.9).unwrap();
        }
        for u in 0..(n - 1) {
            for v in (u + 1)..(n - 1) {
                if rng.gen::<f64>() < 0.12 {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.5).unwrap();
                }
            }
        }
        b.build()
    };
    for (mode, budget) in [
        (mule::IndexMode::Always, usize::MAX),
        (mule::IndexMode::Always, 0),
        (mule::IndexMode::Never, 0),
    ] {
        let cfg = mule::PrepareConfig {
            mule: mule::MuleConfig {
                index_mode: mode,
                dense_index_bytes: budget,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut inst = mule::prepare(&g, 0.05, &cfg).unwrap();
        let mut warm = mule::sinks::CountSink::new();
        inst.run(&mut warm);
        assert!(warm.count > 50, "fixture too easy: {} cliques", warm.count);
        let mut sink = mule::sinks::CountSink::new();
        let (allocs, _) = allocations_during(|| inst.run(&mut sink));
        assert_eq!(
            allocs, 0,
            "steady-state prepared rerun allocated {allocs} times (mode {mode:?}, budget {budget})"
        );
        assert_eq!(sink.count, warm.count);
    }
}

#[test]
fn first_run_allocation_count_is_bounded_by_depth_not_nodes() {
    // Even the *first* run must allocate only O(max_depth + log capacity)
    // times (arena growth doublings), never per node: a graph with tens of
    // thousands of search nodes stays under a small constant.
    let g = dense_fixture();
    let mut m = mule::Mule::new(&g, 0.05).unwrap();
    let mut sink = mule::sinks::CountSink::new();
    let (allocs, _) = allocations_during(|| m.run(&mut sink));
    let nodes = m.stats().calls;
    assert!(nodes > 1_000, "fixture too easy: {nodes} nodes");
    assert!(
        allocs < 100,
        "first run allocated {allocs} times over {nodes} nodes — not amortized"
    );
}
