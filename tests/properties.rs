//! Property-based tests (proptest) over the core invariants:
//!
//! * soundness: everything MULE emits is an α-maximal clique (oracle);
//! * completeness signature: the emitted collection is non-redundant
//!   (Definition 6) and respects Theorem 1's cardinality bound;
//! * Observation 2/3 consequences: pruning never changes the output;
//! * LARGE–MULE ≡ size-filtered MULE for arbitrary inputs;
//! * serialization round-trips preserve graphs exactly.

use mule::bounds::max_alpha_maximal_cliques;
use proptest::prelude::*;
use ugraph_core::{clique, subgraph, GraphBuilder, UncertainGraph};

/// Strategy: a random uncertain graph on up to `max_n` vertices with
/// dyadic probabilities (exact FP products — see tests/cross_algorithm.rs)
/// and a dyadic α, so every threshold comparison is exact.
fn dyadic_graph_and_alpha(max_n: usize) -> impl Strategy<Value = (UncertainGraph, f64)> {
    (2..=max_n, any::<u64>(), 1u32..=10).prop_map(|(n, seed, alpha_pow)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < 0.55 {
                    let p = [1.0, 0.5, 0.25, 0.125, 0.0625][rng.gen_range(0..5usize)];
                    b.add_edge(u, v, p).unwrap();
                }
            }
        }
        (b.build(), 0.5f64.powi(alpha_pow as i32))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mule_output_is_sound_and_canonical((g, alpha) in dyadic_graph_and_alpha(12)) {
        let cliques = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
        for c in &cliques {
            // Canonical form: strictly increasing vertex ids.
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "{c:?} not sorted");
            // Soundness against the reference oracle.
            prop_assert!(
                clique::is_alpha_maximal(&g, c, alpha),
                "{c:?} not {alpha}-maximal"
            );
        }
    }

    #[test]
    fn mule_output_is_nonredundant_and_bounded((g, alpha) in dyadic_graph_and_alpha(12)) {
        let cliques = mule::enumerate_maximal_cliques(&g, alpha).unwrap();
        // No duplicates (list is sorted lexicographically).
        for w in cliques.windows(2) {
            prop_assert!(w[0] != w[1], "duplicate emission {:?}", w[0]);
        }
        // Definition 6: no member contains another.
        for a in &cliques {
            for b in &cliques {
                if a != b {
                    prop_assert!(
                        !a.iter().all(|x| b.contains(x)),
                        "{a:?} ⊆ {b:?} violates non-redundancy"
                    );
                }
            }
        }
        // Theorem 1: cardinality cannot exceed C(n, ⌊n/2⌋).
        let bound = max_alpha_maximal_cliques(g.num_vertices() as u64).unwrap();
        prop_assert!((cliques.len() as u128) <= bound);
    }

    #[test]
    fn mule_equals_naive((g, alpha) in dyadic_graph_and_alpha(10)) {
        prop_assert_eq!(
            mule::enumerate_maximal_cliques(&g, alpha).unwrap(),
            mule::naive::enumerate_naive(&g, alpha).unwrap()
        );
    }

    #[test]
    fn alpha_pruning_is_output_invariant((g, alpha) in dyadic_graph_and_alpha(12)) {
        // Observation 3: dropping sub-threshold edges changes nothing.
        let pruned = subgraph::prune_below_alpha(&g, alpha).unwrap();
        prop_assert_eq!(
            mule::enumerate_maximal_cliques(&pruned, alpha).unwrap(),
            mule::enumerate_maximal_cliques(&g, alpha).unwrap()
        );
    }

    #[test]
    fn large_mule_is_exactly_the_size_filter(
        (g, alpha) in dyadic_graph_and_alpha(12),
        t in 2usize..=5,
    ) {
        let expected: Vec<_> = mule::enumerate_maximal_cliques(&g, alpha)
            .unwrap()
            .into_iter()
            .filter(|c| c.len() >= t)
            .collect();
        prop_assert_eq!(
            mule::enumerate_large_maximal_cliques(&g, alpha, t).unwrap(),
            expected
        );
    }

    #[test]
    fn shared_neighborhood_pruning_preserves_large_cliques(
        (g, alpha) in dyadic_graph_and_alpha(12),
        t in 3usize..=5,
    ) {
        let (pruned, _) = mule::pruning::shared_neighborhood_filter(&g, alpha, t).unwrap();
        // Every α-maximal clique of size ≥ t must survive edge-for-edge.
        for c in mule::enumerate_maximal_cliques(&g, alpha).unwrap() {
            if c.len() >= t {
                for (i, &u) in c.iter().enumerate() {
                    for &v in &c[i + 1..] {
                        prop_assert!(
                            pruned.contains_edge(u, v),
                            "pruning lost edge ({u},{v}) of {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clique_probability_monotone_under_subsets((g, _alpha) in dyadic_graph_and_alpha(10)) {
        // Observation 2 on every maximal clique and each of its prefixes.
        for c in mule::enumerate_maximal_cliques(&g, 0.015625).unwrap() {
            if let Some(q_full) = clique::clique_probability(&g, &c) {
                for k in 0..c.len() {
                    let q_prefix = clique::clique_probability(&g, &c[..k]).unwrap();
                    prop_assert!(q_prefix >= q_full);
                }
            }
        }
    }

    #[test]
    fn text_and_binary_round_trips((g, _alpha) in dyadic_graph_and_alpha(14)) {
        // Binary: exact equality.
        let bytes = ugraph_io::binfmt::to_bytes(&g);
        let back = ugraph_io::binfmt::from_bytes(bytes).unwrap();
        prop_assert_eq!(&back, &g);
        // Text: may renumber vertices (dense remap is identity here since
        // ids are already dense and every vertex with an edge appears);
        // compare edge multisets through the id map.
        let mut buf = Vec::new();
        ugraph_io::write_prob_edgelist(&g, &mut buf).unwrap();
        let loaded = ugraph_io::read_prob_edgelist(
            &buf[..],
            ugraph_core::DuplicatePolicy::Error,
        ).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            let iu = loaded.original_ids.iter().position(|&x| x == u as u64);
            let iv = loaded.original_ids.iter().position(|&x| x == v as u64);
            let (Some(iu), Some(iv)) = (iu, iv) else {
                prop_assert!(false, "vertex lost in text round-trip");
                unreachable!()
            };
            prop_assert_eq!(loaded.graph.edge_prob_raw(iu as u32, iv as u32), Some(p));
        }
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form((g, _alpha) in dyadic_graph_and_alpha(8)) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        // Check the first maximal clique at a permissive threshold.
        if let Some(c) = mule::enumerate_maximal_cliques(&g, 0.0009765625).unwrap().first() {
            let exact = clique::clique_probability(&g, c).unwrap();
            let est = ugraph_core::sample::estimate_clique_probability(&g, c, 40_000, &mut rng);
            prop_assert!((est - exact).abs() < 0.03, "{est} vs {exact} for {c:?}");
        }
    }
}
