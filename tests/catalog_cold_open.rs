//! Cold-open pin: `Query::open` must rebuild a working session from a
//! catalog with **zero** pipeline work. The proof uses
//! `mule::prepare::pipeline_invocations()`, the process-wide monotone
//! counter every pipeline execution bumps — prepare moves it by exactly
//! one, and any number of opens and queries afterwards must not move it
//! at all.
//!
//! Single `#[test]` on purpose (the pattern of `tests/session_reuse.rs`):
//! each integration-test file is its own process, so no concurrent test
//! can move the counter between the captures.

use mule::prepare::pipeline_invocations;
use mule::{Engine, Query};
use ugraph_core::builder::from_edges;
use ugraph_core::VertexId;

#[test]
fn cold_open_serves_all_queries_with_zero_pipeline_work() {
    // Two triangles in separate components plus an isolated vertex and a
    // sub-α edge: the schedule interleaves roots and singletons, so a
    // reopened session exercises every decoded artifact.
    let g = from_edges(
        9,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (4, 5, 0.8),
            (5, 6, 0.8),
            (4, 6, 0.8),
            (7, 8, 0.3),
        ],
    )
    .unwrap();

    let before = pipeline_invocations();
    let mut session = Query::new(&g).alpha(0.5).prepare().unwrap();
    assert_eq!(pipeline_invocations(), before + 1, "prepare ran once");

    let reference: Vec<(Vec<VertexId>, u64)> = session
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    let ref_stats = *session.stats();
    let ref_count = session.count().unwrap();
    let ref_top: Vec<(Vec<VertexId>, u64)> = session
        .top_k(3)
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();

    let dir = std::env::temp_dir().join(format!("ugq-cold-open-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.ugq");
    session.save(&path).unwrap();
    let bytes = session.to_catalog_bytes();
    assert_eq!(
        pipeline_invocations(),
        before + 1,
        "saving is pure serialization"
    );

    // Open repeatedly — from the file and from bytes — and drive every
    // query shape; the pipeline counter must never move again.
    for round in 0..3 {
        let mut reopened = Query::open(&path).unwrap();
        let pairs: Vec<(Vec<VertexId>, u64)> = reopened
            .collect()
            .unwrap()
            .into_iter()
            .map(|(c, p)| (c, p.to_bits()))
            .collect();
        assert_eq!(pairs, reference, "round {round}: collect");
        assert_eq!(reopened.stats(), &ref_stats, "round {round}: stats");
        assert_eq!(reopened.count().unwrap(), ref_count, "round {round}: count");
        let top: Vec<(Vec<VertexId>, u64)> = reopened
            .top_k(3)
            .unwrap()
            .into_iter()
            .map(|(c, p)| (c, p.to_bits()))
            .collect();
        assert_eq!(top, ref_top, "round {round}: top_k");
        let pulled: Vec<(Vec<VertexId>, u64)> =
            reopened.iter().map(|(c, p)| (c, p.to_bits())).collect();
        assert_eq!(pulled, reference, "round {round}: iter");

        let mut from_bytes = Query::open_bytes(bytes.clone()).unwrap();
        assert_eq!(
            from_bytes
                .collect()
                .unwrap()
                .into_iter()
                .map(|(c, p)| (c, p.to_bits()))
                .collect::<Vec<_>>(),
            reference,
            "round {round}: open_bytes collect"
        );

        // Engine and thread retuning on the reopened session is runtime
        // state — no pipeline involvement.
        from_bytes.set_threads(2).unwrap();
        from_bytes.set_engine(Engine::Noip);
        let mut noip: Vec<(Vec<VertexId>, u64)> = from_bytes
            .collect()
            .unwrap()
            .into_iter()
            .map(|(c, p)| (c, p.to_bits()))
            .collect();
        noip.sort();
        let mut sorted_ref = reference.clone();
        sorted_ref.sort();
        assert_eq!(noip, sorted_ref, "round {round}: NOIP engine after open");
    }

    assert_eq!(
        pipeline_invocations(),
        before + 1,
        "open/open_bytes and every query ran zero pipeline stages"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
