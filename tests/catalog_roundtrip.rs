//! Catalog round-trip pin (tentpole of the persistence PR): a session
//! saved as a UGQ1 catalog and reopened must serve **byte-identical**
//! answers — same cliques, same canonical order, bit-equal
//! probabilities, equal `EnumerationStats` — across graphs × α ×
//! `min_size` × index mode × engine, for every execution method
//! (`collect`, `count`, `top_k`, `iter`).
//!
//! The zero-pipeline-work half of the claim is pinned separately by
//! `tests/catalog_cold_open.rs` (a single-`#[test]` binary, because it
//! reads the process-wide pipeline counter).

use mule::{Engine, EnumerationStats, IndexMode, Prepared, Query};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

fn random_graph(seed: u64, n: usize, density: f64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
            }
        }
    }
    b.build()
}

/// Everything observable about a session's answers, with probabilities
/// as exact bit patterns: collect, count, top-k and the pull iterator,
/// each with the stats it left behind.
#[allow(clippy::type_complexity)]
fn observe(
    s: &mut Prepared,
) -> (
    Vec<(Vec<VertexId>, u64)>,
    EnumerationStats,
    u64,
    EnumerationStats,
    Vec<(Vec<VertexId>, u64)>,
    Vec<(Vec<VertexId>, u64)>,
) {
    let pairs: Vec<(Vec<VertexId>, u64)> = s
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    let collect_stats = *s.stats();
    let count = s.count().unwrap();
    let count_stats = *s.stats();
    let top: Vec<(Vec<VertexId>, u64)> = s
        .top_k(2)
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    let pulled: Vec<(Vec<VertexId>, u64)> = s.iter().map(|(c, p)| (c, p.to_bits())).collect();
    (pairs, collect_stats, count, count_stats, top, pulled)
}

fn assert_identical(original: &mut Prepared, reopened: &mut Prepared, what: &str) {
    assert_eq!(
        reopened.alpha().to_bits(),
        original.alpha().to_bits(),
        "{what}: α"
    );
    assert_eq!(reopened.min_size(), original.min_size(), "{what}: min_size");
    assert_eq!(reopened.report(), original.report(), "{what}: report");
    assert_eq!(observe(reopened), observe(original), "{what}");
}

#[test]
fn round_trip_matrix_is_byte_identical() {
    for seed in 0..3u64 {
        let density = [0.12, 0.3, 0.6][seed as usize % 3];
        let g = random_graph(seed, 12 + seed as usize, density);
        for alpha in [0.9, 0.5, 0.1] {
            for min_size in [0usize, 3] {
                for mode in [IndexMode::Auto, IndexMode::Always, IndexMode::Never] {
                    for engine in [Engine::Auto, Engine::Noip] {
                        let what =
                            format!("seed={seed} α={alpha} t={min_size} {mode:?} {engine:?}");
                        let mut original = Query::new(&g)
                            .alpha(alpha)
                            .min_size(min_size)
                            .index_mode(mode)
                            .engine(engine)
                            .prepare()
                            .unwrap();
                        let mut reopened = Query::open_bytes(original.to_catalog_bytes()).unwrap();
                        reopened.set_engine(engine);
                        assert_identical(&mut original, &mut reopened, &what);
                    }
                }
            }
        }
    }
}

#[test]
fn file_round_trip_matches_bytes_round_trip() {
    let dir = std::env::temp_dir().join(format!("ugq-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.ugq");
    let g = random_graph(7, 16, 0.3);
    let mut original = Query::new(&g).alpha(0.4).prepare().unwrap();
    original.save(&path).unwrap();
    // save() writes exactly the bytes to_catalog_bytes() returns.
    assert_eq!(std::fs::read(&path).unwrap(), original.to_catalog_bytes());
    let mut reopened = Query::open(&path).unwrap();
    assert_identical(&mut original, &mut reopened, "file round trip");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_session_supports_parallel_collect() {
    let g = random_graph(11, 18, 0.35);
    let mut original = Query::new(&g).alpha(0.3).threads(3).prepare().unwrap();
    let mut reopened = Query::open_bytes(original.to_catalog_bytes()).unwrap();
    assert_eq!(reopened.threads(), 1, "runtime settings are not persisted");
    reopened.set_threads(3).unwrap();
    assert_eq!(reopened.collect().unwrap(), original.collect().unwrap());
    assert_eq!(reopened.stats(), original.stats());
    assert!(reopened.set_threads(0).is_err(), "zero threads rejected");
}

#[test]
fn structured_graphs_round_trip() {
    // Edgeless, empty, fully dense, and a min_size that empties the
    // instance entirely — the shapes where schedules and singleton
    // lists degenerate.
    let empty = GraphBuilder::new(0).build();
    let edgeless = GraphBuilder::new(5).build();
    let mut dense_b = GraphBuilder::new(6);
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            dense_b.add_edge(u, v, 0.95).unwrap();
        }
    }
    let dense = dense_b.build();
    for (g, name) in [
        (&empty, "empty"),
        (&edgeless, "edgeless"),
        (&dense, "dense"),
    ] {
        for min_size in [0usize, 2, 10] {
            let what = format!("{name} t={min_size}");
            let mut original = Query::new(g)
                .alpha(0.5)
                .min_size(min_size)
                .prepare()
                .unwrap();
            let mut reopened = Query::open_bytes(original.to_catalog_bytes()).unwrap();
            assert_identical(&mut original, &mut reopened, &what);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_sessions_round_trip(
        seed in 0u64..10_000,
        n in 2usize..16,
        di in 0usize..3,
        ai in 0usize..4,
        t in 0usize..4,
    ) {
        let g = random_graph(seed, n, [0.15, 0.35, 0.7][di]);
        let alpha = [0.9, 0.5, 0.1, 0.01][ai];
        let mut original = Query::new(&g)
            .alpha(alpha)
            .min_size(t)
            .prepare()
            .unwrap();
        let mut reopened = Query::open_bytes(original.to_catalog_bytes()).unwrap();
        prop_assert_eq!(reopened.report(), original.report());
        prop_assert_eq!(observe(&mut reopened), observe(&mut original));
        // Idempotence: re-encoding the reopened session reproduces the
        // byte image exactly.
        prop_assert_eq!(reopened.to_catalog_bytes(), original.to_catalog_bytes());
    }
}
