//! Oracle cross-check (satellite of PR 1): MULE and DFS–NOIP against
//! the exponential `naive` enumerator on small graphs at
//! α ∈ {0.1, 0.5, 0.9}.
//!
//! Coverage is exhaustive where that is tractable and randomized where
//! it is not:
//!
//! * **Exhaustive topology sweep, n ≤ 4**: every one of the `2^C(n,2)`
//!   labeled graphs (64 for n = 4), with edge probabilities cycling
//!   through a fixed palette so threshold comparisons exercise values
//!   above, at, and below each α.
//! * **Randomized sweep, n = 5..=8**: seeded random graphs across a
//!   density grid — hundreds of distinct instances per size.
//!
//! `naive` checks α-maximality by definition over all vertex subsets,
//! so agreement here pins both optimized algorithms to the paper's
//! Definition 5/6 semantics exactly.

use mule::dfs_noip::enumerate_maximal_cliques_noip;
use mule::naive::enumerate_naive;
use ugraph_core::{GraphBuilder, UncertainGraph};

const ALPHAS: [f64; 3] = [0.1, 0.5, 0.9];

/// Probability palette: straddles every α in [`ALPHAS`], includes the
/// exact threshold values and 1.0.
const PROBS: [f64; 6] = [0.05, 0.1, 0.3, 0.5, 0.9, 1.0];

fn check_all_alphas(g: &UncertainGraph, context: &str) {
    for alpha in ALPHAS {
        let expected = enumerate_naive(g, alpha).unwrap();
        let mule_out = mule::enumerate_maximal_cliques(g, alpha).unwrap();
        assert_eq!(
            mule_out, expected,
            "MULE disagrees with naive oracle at α={alpha} on {context}"
        );
        let noip_out = enumerate_maximal_cliques_noip(g, alpha).unwrap();
        assert_eq!(
            noip_out, expected,
            "DFS-NOIP disagrees with naive oracle at α={alpha} on {context}"
        );
    }
}

/// All C(n,2) vertex pairs of an n-vertex graph, in a fixed order.
fn pairs(n: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            out.push((u, v));
        }
    }
    out
}

#[test]
fn exhaustive_topologies_up_to_four_vertices() {
    for n in 0..=4u32 {
        let pairs = pairs(n);
        let num_masks = 1u32 << pairs.len();
        for mask in 0..num_masks {
            // Cycle the palette differently per mask so the same
            // topology appears with several probability assignments
            // across the sweep.
            for phase in 0..2usize {
                let mut b = GraphBuilder::new(n as usize);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        let p = PROBS[(i + phase * 3 + mask as usize) % PROBS.len()];
                        b.add_edge(u, v, p).unwrap();
                    }
                }
                let g = b.build();
                check_all_alphas(&g, &format!("n={n} mask={mask:#b} phase={phase}"));
            }
        }
    }
}

#[test]
fn randomized_graphs_five_to_eight_vertices() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    for n in 5..=8usize {
        for (di, density) in [0.2, 0.45, 0.7, 0.95].into_iter().enumerate() {
            for rep in 0..25u64 {
                let seed = (n as u64) << 32 | (di as u64) << 16 | rep;
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut b = GraphBuilder::new(n);
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if rng.gen::<f64>() < density {
                            let p = PROBS[rng.gen_range(0..PROBS.len())];
                            b.add_edge(u, v, p).unwrap();
                        }
                    }
                }
                let g = b.build();
                check_all_alphas(&g, &format!("n={n} density={density} rep={rep}"));
            }
        }
    }
}

#[test]
fn extremal_shapes_agree_with_oracle() {
    // Complete graphs: the worst case for subset structure.
    for n in 2..=7usize {
        for p in [0.3, 0.5, 0.95] {
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            check_all_alphas(&b.build(), &format!("K{n} p={p}"));
        }
    }
    // Stars, paths and cycles: sparse shapes with many size-2 maximals.
    for n in 3..=8u32 {
        let mut star = GraphBuilder::new(n as usize);
        let mut path = GraphBuilder::new(n as usize);
        let mut cycle = GraphBuilder::new(n as usize);
        for v in 1..n {
            star.add_edge(0, v, PROBS[v as usize % PROBS.len()])
                .unwrap();
        }
        for v in 0..n - 1 {
            path.add_edge(v, v + 1, PROBS[v as usize % PROBS.len()])
                .unwrap();
        }
        for v in 0..n {
            cycle
                .add_edge(v.min((v + 1) % n), v.max((v + 1) % n), 0.5)
                .unwrap();
        }
        check_all_alphas(&star.build(), &format!("star n={n}"));
        check_all_alphas(&path.build(), &format!("path n={n}"));
        check_all_alphas(&cycle.build(), &format!("cycle n={n}"));
    }
}

/// Arena-kernel cases (PR 2): both membership strategies over the
/// depth-alternating span arena must match the exponential oracle on
/// inputs chosen to stress the arena specifically — deep DFS paths
/// (spans stacked many levels), hub vertices (large spans truncated and
/// regrown thousands of times), and near-threshold probabilities (the
/// leaf short-circuit must agree with materializing X' exactly).
#[test]
fn arena_kernel_matches_oracle_under_both_index_modes() {
    use mule::sinks::CollectSink;
    use mule::{IndexMode, Mule, MuleConfig};

    let mut cases: Vec<(String, UncertainGraph)> = Vec::new();
    // Deep path: K8 with probabilities straddling every α power.
    for p in [0.5, 0.9] {
        let mut b = GraphBuilder::new(8);
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v, p).unwrap();
            }
        }
        cases.push((format!("K8 p={p}"), b.build()));
    }
    // Hub + periphery: one huge root span, many tiny ones.
    {
        let mut b = GraphBuilder::new(12);
        for v in 1..12u32 {
            b.add_edge(0, v, PROBS[v as usize % PROBS.len()]).unwrap();
        }
        for v in 1..11u32 {
            b.add_edge(v, v + 1, 0.9).unwrap();
        }
        cases.push(("hub-12".into(), b.build()));
    }
    // Two K5s sharing two vertices: X sets stay non-empty deep into the
    // search, exercising the short-circuit's survivor scan.
    {
        let mut b = GraphBuilder::new(8);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
        for u in 3..8u32 {
            for v in (u + 1)..8 {
                if !(u < 5 && v < 5) {
                    b.add_edge(u, v, 0.5).unwrap();
                }
            }
        }
        cases.push(("overlapping-K5s".into(), b.build()));
    }

    for (label, g) in &cases {
        for alpha in [0.9, 0.5, 0.1, 0.01, 1e-6] {
            let expected = enumerate_naive(g, alpha).unwrap();
            for mode in [IndexMode::Auto, IndexMode::Always, IndexMode::Never] {
                let cfg = MuleConfig {
                    index_mode: mode,
                    ..Default::default()
                };
                let mut m = Mule::with_config(g, alpha, cfg).unwrap();
                let mut sink = CollectSink::new();
                m.run(&mut sink);
                assert_eq!(
                    sink.into_sorted_cliques(),
                    expected,
                    "{label} α={alpha} mode={mode:?}"
                );
            }
        }
    }
}

/// LARGE–MULE's arena recursion (size bound + leaf short-circuit) vs the
/// oracle filtered to `|C| ≥ t`.
#[test]
fn large_mule_arena_matches_filtered_oracle() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 7 + (seed % 2) as usize;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < 0.6 {
                    b.add_edge(u, v, PROBS[rng.gen_range(0..PROBS.len())])
                        .unwrap();
                }
            }
        }
        let g = b.build();
        for alpha in ALPHAS {
            let all = enumerate_naive(&g, alpha).unwrap();
            for t in 2..=4usize {
                let expected: Vec<Vec<u32>> =
                    all.iter().filter(|c| c.len() >= t).cloned().collect();
                let got = mule::enumerate_large_maximal_cliques(&g, alpha, t).unwrap();
                assert_eq!(got, expected, "seed={seed} α={alpha} t={t}");
            }
        }
    }
}
