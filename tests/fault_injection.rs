//! Fault injection against the session stack: hostile sinks and
//! tripped limits must never corrupt a session or smear the output.
//!
//! The two load-bearing guarantees (see `mule::limits` module docs):
//!
//! * **typed interruption** — a deadline / budget / cancellation stops
//!   the run with the matching [`MuleError`] variant carrying partial
//!   stats, never a panic and never a silent truncation;
//! * **the prefix guarantee** — whatever the sink received before the
//!   interrupt is a byte-identical prefix (same cliques, same
//!   probability bits, same order) of the uninterrupted stream, and
//!   limits that never fire leave the stream byte-identical to an
//!   unlimited run.
//!
//! Plus one hardening pin for servers that keep sessions resident: a
//! sink that *panics* mid-emission unwinds through the engine, and the
//! session remains usable afterwards (the panic poisons the request,
//! not the session). The serve-side half of this battery — truncated /
//! oversized / garbage frames, mid-stream disconnects, overload — lives
//! in `crates/cli/tests/serve.rs`.

use mule::sinks::{CliqueSink, CollectSink, Control};
use mule::{CancelToken, MuleError, Query};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use ugraph_core::{GraphBuilder, UncertainGraph, VertexId};

type Stream = Vec<(Vec<VertexId>, u64)>;

/// A deterministic random graph dense enough that enumeration does real
/// work (the 48-vertex variant runs a few thousand search nodes).
fn dense_graph(n: usize, seed: u64) -> UncertainGraph {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < 0.4 {
                b.add_edge(u, v, 1.0 - rng.gen::<f64>() * 0.5).unwrap();
            }
        }
    }
    b.build()
}

/// The uninterrupted stream of a default session, with probability bits.
fn full_stream(g: &UncertainGraph, alpha: f64) -> Stream {
    let mut session = Query::new(g).alpha(alpha).prepare().unwrap();
    session
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect()
}

/// Sink that answers [`Control::Stop`] after `k` emissions — the
/// "failing" (refusing) consumer.
struct StopAfter {
    k: usize,
    seen: Stream,
}

impl CliqueSink for StopAfter {
    fn emit(&mut self, clique: &[VertexId], prob: f64) -> Control {
        self.seen.push((clique.to_vec(), prob.to_bits()));
        if self.seen.len() >= self.k {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Sink that panics on the `k`-th emission — the poisoned consumer a
/// resident server session must survive.
struct PanicAfter {
    k: usize,
    emitted: usize,
}

impl CliqueSink for PanicAfter {
    fn emit(&mut self, _clique: &[VertexId], _prob: f64) -> Control {
        self.emitted += 1;
        if self.emitted >= self.k {
            panic!("deliberate sink panic on emission {}", self.emitted);
        }
        Control::Continue
    }
}

/// A sink refusing more output is a normal early exit, not an
/// interruption: `stream` returns `Ok`, and the refused prefix is
/// byte-identical to the head of the full stream.
#[test]
fn failing_sink_is_an_ordinary_stop_not_an_error() {
    let g = dense_graph(32, 5);
    let full = full_stream(&g, 0.05);
    assert!(full.len() > 8, "fixture too small: {} cliques", full.len());
    let mut session = Query::new(&g).alpha(0.05).prepare().unwrap();
    let mut sink = StopAfter {
        k: 5,
        seen: Vec::new(),
    };
    session
        .stream(&mut sink)
        .expect("sink stop is not an error");
    assert_eq!(&sink.seen[..], &full[..5]);
}

/// A panic in the sink unwinds through the kernel recursion; the
/// session stays usable and its next run is byte-identical to a fresh
/// session's. (A server wraps requests in `catch_unwind` and discards
/// the session defensively — this pins that even *without* discarding,
/// no corrupted state survives the unwind.)
#[test]
fn session_survives_a_panicking_sink() {
    let g = dense_graph(32, 5);
    let full = full_stream(&g, 0.05);
    let mut session = Query::new(&g).alpha(0.05).prepare().unwrap();
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = PanicAfter { k: 3, emitted: 0 };
        let _ = session.stream(&mut sink);
    }));
    assert!(unwound.is_err(), "the sink panic must propagate");

    let after: Stream = session
        .collect()
        .expect("session must work after a sink panic")
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    assert_eq!(after, full, "post-panic stream must be byte-identical");
    assert_eq!(session.stats().emitted as usize, full.len());
}

/// A zero deadline interrupts before the first emission — the typed
/// error carries stats, the prefix is empty, and clearing the deadline
/// restores the session completely.
#[test]
fn zero_deadline_interrupts_before_any_emission() {
    let g = dense_graph(32, 5);
    let full = full_stream(&g, 0.05);
    let mut session = Query::new(&g)
        .alpha(0.05)
        .deadline(Duration::ZERO)
        .prepare()
        .unwrap();
    let mut sink = CollectSink::new();
    let err = session.stream(&mut sink).expect_err("zero deadline");
    assert!(matches!(err, MuleError::DeadlineExceeded { .. }), "{err}");
    assert!(err.interrupted_stats().is_some());
    assert!(sink.is_empty(), "nothing may be emitted past a dead line");

    session.set_deadline(None);
    let recovered: Stream = session
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    assert_eq!(recovered, full);
}

/// A short real deadline on a graph whose full run takes much longer
/// fires *mid-component* (the fixture is one large component, so the
/// interrupt lands inside the kernel recursion, not at a component
/// boundary). The partial output must still be a byte-identical prefix.
#[test]
fn deadline_mid_component_preserves_the_prefix() {
    let g = dense_graph(56, 9);
    let full = full_stream(&g, 0.02);
    let mut session = Query::new(&g)
        .alpha(0.02)
        .deadline(Duration::from_millis(2))
        .prepare()
        .unwrap();
    let mut sink = CollectSink::new();
    match session.stream(&mut sink) {
        Err(e) => {
            assert!(matches!(e, MuleError::DeadlineExceeded { .. }), "{e}");
            let stats = e.interrupted_stats().expect("partial stats");
            assert_eq!(stats.emitted as usize, sink.len());
            let got: Stream = sink
                .cliques()
                .iter()
                .cloned()
                .zip(sink.probs().iter().map(|p| p.to_bits()))
                .collect();
            assert!(got.len() < full.len(), "deadline fired after completion");
            assert_eq!(&got[..], &full[..got.len()], "not a byte-identical prefix");
        }
        // On an absurdly fast machine 2ms may cover the whole run; the
        // property under test is then vacuous but nothing is wrong.
        Ok(stats) => assert_eq!(stats.emitted as usize, full.len()),
    }
}

/// Cancellation from another thread mid-run: typed `Cancelled`, prefix
/// intact, and the session serves the full stream again after
/// `CancelToken::reset`.
#[test]
fn cross_thread_cancellation_is_typed_and_recoverable() {
    let g = dense_graph(56, 9);
    let full = full_stream(&g, 0.02);
    let token = CancelToken::new();
    let mut session = Query::new(&g)
        .alpha(0.02)
        .cancel_token(token.clone())
        .prepare()
        .unwrap();

    let killer = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let mut sink = CollectSink::new();
    let outcome = session.stream(&mut sink).copied();
    killer.join().unwrap();
    match outcome {
        Err(e) => {
            assert!(matches!(e, MuleError::Cancelled { .. }), "{e}");
            let got: Stream = sink
                .cliques()
                .iter()
                .cloned()
                .zip(sink.probs().iter().map(|p| p.to_bits()))
                .collect();
            assert_eq!(&got[..], &full[..got.len()], "not a byte-identical prefix");
        }
        Ok(stats) => assert_eq!(stats.emitted as usize, full.len()),
    }

    token.reset();
    let recovered: Stream = session
        .collect()
        .unwrap()
        .into_iter()
        .map(|(c, p)| (c, p.to_bits()))
        .collect();
    assert_eq!(recovered, full);
}

/// Strategy shared by the proptests: a random graph, a dyadic α, and a
/// node budget spanning "trips immediately" to "never trips".
fn graph_alpha_budget() -> impl Strategy<Value = (UncertainGraph, f64, u64)> {
    (4..=14usize, any::<u64>(), 1u32..=8, 0u64..6000).prop_map(|(n, seed, alpha_pow, budget)| {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < 0.6 {
                    let p = [1.0, 0.5, 0.25, 0.125][rng.gen_range(0..4usize)];
                    b.add_edge(u, v, p).unwrap();
                }
            }
        }
        (b.build(), 0.5f64.powi(alpha_pow as i32), budget)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The prefix property, adversarially: for *any* node budget the
    /// interrupted output is a byte-identical prefix of the full
    /// stream; if the budget never fires the result is byte-identical
    /// in full.
    #[test]
    fn any_node_budget_yields_a_byte_identical_prefix(
        (g, alpha, budget) in graph_alpha_budget()
    ) {
        let full = full_stream(&g, alpha);
        let mut session = Query::new(&g)
            .alpha(alpha)
            .node_budget(budget)
            .prepare()
            .unwrap();
        let mut sink = CollectSink::new();
        let got_len = match session.stream(&mut sink) {
            Ok(stats) => {
                prop_assert!(stats.calls <= budget.saturating_add(mule::limits::PROBE_INTERVAL));
                sink.len()
            }
            Err(e) => {
                prop_assert!(matches!(e, MuleError::BudgetExhausted { .. }), "{}", e);
                let stats = e.interrupted_stats().expect("partial stats");
                prop_assert_eq!(stats.emitted as usize, sink.len());
                sink.len()
            }
        };
        let got: Stream = sink
            .cliques()
            .iter()
            .cloned()
            .zip(sink.probs().iter().map(|p| p.to_bits()))
            .collect();
        prop_assert_eq!(&got[..], &full[..got_len]);
    }

    /// Limits that never fire (huge budget, far deadline, untripped
    /// token) leave output *and* counters byte-identical to an
    /// unlimited run: the probes are compiled in but invisible.
    #[test]
    fn untriggered_limits_are_byte_invisible(
        (g, alpha, _budget) in graph_alpha_budget()
    ) {
        let mut unlimited = Query::new(&g).alpha(alpha).prepare().unwrap();
        let want = unlimited.collect().unwrap();
        let want_stats = *unlimited.stats();

        let mut limited = Query::new(&g)
            .alpha(alpha)
            .deadline(Duration::from_secs(3600))
            .node_budget(u64::MAX)
            .cancel_token(CancelToken::new())
            .prepare()
            .unwrap();
        let got = limited.collect().unwrap();
        prop_assert_eq!(got.len(), want.len());
        for ((wc, wp), (gc, gp)) in want.iter().zip(&got) {
            prop_assert_eq!(wc, gc);
            prop_assert_eq!(wp.to_bits(), gp.to_bits());
        }
        prop_assert_eq!(*limited.stats(), want_stats);
    }
}
