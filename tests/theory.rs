//! Empirical verification of the paper's theory (Sections 3–4).

use mule::bounds::{self, max_alpha_maximal_cliques, moon_moser};
use mule::sinks::CountSink;
use mule::Mule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugraph_core::GraphBuilder;
use ugraph_gen::extremal::{lemma1_graph, moon_moser_graph};

/// Theorem 1 lower bound (Lemma 1): the extremal construction attains
/// exactly `C(n, ⌊n/2⌋)` α-maximal cliques, for several α and all small n.
#[test]
fn lemma1_construction_attains_the_bound() {
    for n in 2..=16 {
        for alpha in [0.1, 0.5, 0.9] {
            let g = lemma1_graph(n, alpha);
            let count = mule::count_maximal_cliques(&g, alpha).unwrap();
            assert_eq!(
                count as u128,
                max_alpha_maximal_cliques(n as u64).unwrap(),
                "n={n}, α={alpha}"
            );
        }
    }
}

/// Theorem 1 upper bound: no graph may exceed `C(n, ⌊n/2⌋)` — checked
/// exhaustively-ish over many random graphs of every density.
#[test]
fn no_random_graph_exceeds_the_bound() {
    let mut rng = SmallRng::seed_from_u64(0x7E0E3A1);
    for trial in 0..200 {
        let n = 2 + trial % 11; // 2..=12
        let density = (trial % 10) as f64 / 10.0 + 0.05;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < density {
                    b.add_edge(u, v, 1.0 - rng.gen::<f64>()).unwrap();
                }
            }
        }
        let g = b.build();
        for alpha in [0.9, 0.5, 0.1, 0.01, 0.001] {
            let count = mule::count_maximal_cliques(&g, alpha).unwrap();
            assert!(
                (count as u128) <= max_alpha_maximal_cliques(n as u64).unwrap(),
                "trial={trial} n={n} α={alpha}: {count}"
            );
        }
    }
}

/// The deterministic extremal family attains Moon–Moser exactly, through
/// both Bron–Kerbosch and MULE at α = 1.
#[test]
fn moon_moser_family_attains_its_bound() {
    for n in 2..=15 {
        let g = moon_moser_graph(n);
        assert_eq!(
            mule::deterministic::count_maximal_cliques_deterministic(&g) as u128,
            moon_moser(n),
            "BK n={n}"
        );
        assert_eq!(
            mule::count_maximal_cliques(&g, 1.0).unwrap() as u128,
            moon_moser(n),
            "MULE n={n}"
        );
    }
}

/// Theorem 3: the search tree has at most `2^n` nodes (each call is a
/// distinct subset) — verified on the worst-case extremal inputs.
#[test]
fn search_tree_respects_theorem_3_bound() {
    for n in 2..=18 {
        let g = lemma1_graph(n, 0.5);
        let mut m = Mule::new(&g, 0.5).unwrap();
        let mut sink = CountSink::new();
        m.run(&mut sink);
        let calls = m.stats().calls as u128;
        assert!(calls <= 1u128 << n, "n={n}: {calls} calls > 2^{n}");
        // And the output itself certifies Observation 5's growth.
        assert_eq!(
            sink.count as u128,
            max_alpha_maximal_cliques(n as u64).unwrap()
        );
    }
}

/// Observation 5: output size lower bound is `(n/2)·C(n,⌊n/2⌋)` vertex
/// ids on the extremal graph — confirm MULE's emitted output size matches.
#[test]
fn output_size_matches_observation_5_witness() {
    for n in [6usize, 9, 12] {
        let g = lemma1_graph(n, 0.5);
        let mut m = Mule::new(&g, 0.5).unwrap();
        let mut sink = CountSink::new();
        m.run(&mut sink);
        assert_eq!(
            sink.total_vertices as u128,
            bounds::output_size_lower_bound(n as u64).unwrap(),
            "n={n}"
        );
    }
}

/// The bounds module's closed forms agree with brute-force binomials.
#[test]
fn closed_forms_cross_check() {
    // Independent Pascal-triangle computation.
    let mut row = vec![1u128];
    for n in 0..=30u64 {
        if n > 0 {
            let mut next = vec![1u128; (n + 1) as usize];
            for k in 1..n as usize {
                next[k] = row[k - 1] + row[k];
            }
            row = next;
        }
        for (k, &val) in row.iter().enumerate() {
            assert_eq!(bounds::binomial(n, k as u64), Some(val), "C({n},{k})");
        }
        assert_eq!(
            max_alpha_maximal_cliques(n),
            Some(row[(n / 2) as usize]),
            "central C({n},·)"
        );
    }
}
