//! The α-refinement contract: for any base floor and any `α ≥ floor`,
//! `Base::refine(α)` must be **byte-identical** to a fresh
//! `Query::new(&g).alpha(α).prepare()` under the same settings — same
//! clique order, same probability bits, same prepare report, same
//! serialized catalog bytes. The base is an optimization, never an
//! approximation.
//!
//! The battery sweeps random graphs × a probability-palette α grid ×
//! floors × `min_size` × engine × index mode × thread counts, plus
//! deterministic component-split scenarios (refinement masking a
//! bridge edge must re-split a base component exactly as the fresh
//! pipeline discovers it) and the floor's typed error.

use mule::{Engine, IndexMode, MuleError, Query};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugraph_core::builder::from_edges;
use ugraph_core::UncertainGraph;

/// Probabilities come from a fixed palette so the α grid below strides
/// across real mass boundaries (edges die in batches as α rises).
const PALETTE: [f64; 6] = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
const ALPHA_GRID: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn random_graph(n: usize, density: f64, seed: u64) -> UncertainGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < density {
                edges.push((u, v, PALETTE[rng.gen_range(0..PALETTE.len())]));
            }
        }
    }
    from_edges(n, &edges).unwrap()
}

/// Pin one (graph, floor, settings) cell: build the base once, refine
/// across the grid, and demand byte-identity with fresh prepares.
#[allow(clippy::too_many_arguments)]
fn assert_refine_identical(
    g: &UncertainGraph,
    floor: f64,
    min_size: usize,
    engine: Engine,
    index_mode: IndexMode,
    threads: usize,
    what: &str,
) {
    let mut base = Query::new(g)
        .alpha_floor(floor)
        .min_size(min_size)
        .index_mode(index_mode)
        .prepare_base()
        .unwrap_or_else(|e| panic!("{what}: prepare_base: {e}"));
    base.set_engine(engine);
    base.set_threads(threads).unwrap();
    for alpha in ALPHA_GRID.into_iter().filter(|a| *a >= floor) {
        let mut refined = base
            .refine(alpha)
            .unwrap_or_else(|e| panic!("{what}: refine({alpha}): {e}"));
        let mut fresh = Query::new(g)
            .alpha(alpha)
            .min_size(min_size)
            .index_mode(index_mode)
            .engine(engine)
            .threads(threads)
            .prepare()
            .unwrap_or_else(|e| panic!("{what}: fresh prepare({alpha}): {e}"));

        // The prepare pipeline itself must have produced the same
        // artifact: identical report and identical serialized bytes.
        assert_eq!(
            refined.report(),
            fresh.report(),
            "{what}: report differs at α = {alpha}"
        );
        assert_eq!(
            refined.to_catalog_bytes(),
            fresh.to_catalog_bytes(),
            "{what}: catalog bytes differ at α = {alpha}"
        );

        // And the answers: same cliques, same order, same prob bits.
        let got = refined.collect().unwrap();
        let want = fresh.collect().unwrap();
        assert_eq!(
            got.len(),
            want.len(),
            "{what}: count differs at α = {alpha}"
        );
        for (i, ((gc, gp), (wc, wp))) in got.iter().zip(&want).enumerate() {
            assert_eq!(gc, wc, "{what}: clique {i} differs at α = {alpha}");
            assert_eq!(
                gp.to_bits(),
                wp.to_bits(),
                "{what}: prob {i} not bit-identical at α = {alpha}"
            );
        }
        assert_eq!(
            refined.stats(),
            fresh.stats(),
            "{what}: enumeration stats differ at α = {alpha}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn refine_is_byte_identical_to_fresh_prepare(
        n in 4usize..28,
        density in 0.15f64..0.6,
        seed in 0u64..1_000_000,
        floor_i in 0usize..3,
        min_size in 0usize..4,
        noip in any::<bool>(),
        mode_i in 0usize..3,
        two_threads in any::<bool>(),
    ) {
        let g = random_graph(n, density, seed);
        let floor = [0.0, 0.2, 0.4][floor_i];
        let engine = if noip { Engine::Noip } else { Engine::Auto };
        let index_mode = [IndexMode::Auto, IndexMode::Always, IndexMode::Never][mode_i];
        let threads = if two_threads { 2 } else { 1 };
        assert_refine_identical(
            &g,
            floor,
            min_size,
            engine,
            index_mode,
            threads,
            &format!("n={n} density={density:.2} seed={seed} floor={floor} t={min_size}"),
        );
    }
}

/// A base component must split when refinement masks its bridge: two
/// solid triangles joined by a weak edge are one floor-component, two
/// α-components. The refined session must match the fresh pipeline's
/// discovery exactly, including which side comes first.
#[test]
fn refinement_splits_components_like_the_fresh_pipeline() {
    let g = from_edges(
        6,
        &[
            (0, 1, 0.9),
            (1, 2, 0.9),
            (0, 2, 0.9),
            (2, 3, 0.3), // the bridge: dies at α > 0.3
            (3, 4, 0.9),
            (4, 5, 0.9),
            (3, 5, 0.9),
        ],
    )
    .unwrap();
    let base = Query::new(&g).prepare_base().unwrap();
    assert_eq!(base.num_components(), 1, "floor 0 sees one barbell");

    // Below the bridge's mass: untouched, still one component.
    let kept = base.refine(0.2).unwrap();
    assert_eq!(kept.report().components_kept, 1);
    // Above it: the refinement must re-split locally.
    let split = base.refine(0.5).unwrap();
    assert_eq!(split.report().components_kept, 2);

    for alpha in [0.2, 0.5, 0.9] {
        assert_refine_identical(&g, 0.0, 0, Engine::Auto, IndexMode::Auto, 1, "barbell");
        let mut refined = base.refine(alpha).unwrap();
        let mut fresh = Query::new(&g).alpha(alpha).prepare().unwrap();
        assert_eq!(refined.collect().unwrap(), fresh.collect().unwrap());
    }
}

/// A chain of bridges: one floor-component shattering into many, with
/// some fragments dropping below `min_size` on the way.
#[test]
fn refinement_shatters_chains_and_drops_small_fragments() {
    // Five triangles chained by progressively weaker bridges.
    let mut edges = Vec::new();
    for c in 0..5u32 {
        let b = 3 * c;
        edges.push((b, b + 1, 0.95));
        edges.push((b + 1, b + 2, 0.95));
        edges.push((b, b + 2, 0.95));
        if c < 4 {
            edges.push((b + 2, b + 3, 0.2 + 0.15 * c as f64));
        }
    }
    let g = from_edges(15, &edges).unwrap();
    for floor in [0.0, 0.1] {
        for min_size in [0, 3, 4] {
            assert_refine_identical(
                &g,
                floor,
                min_size,
                Engine::Auto,
                IndexMode::Auto,
                1,
                &format!("chain floor={floor} t={min_size}"),
            );
        }
    }
}

/// The floor is enforced with a typed error; the usual α validation
/// still applies above it.
#[test]
fn refining_below_the_floor_is_a_typed_error() {
    let g = from_edges(3, &[(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)]).unwrap();
    let base = Query::new(&g).alpha_floor(0.5).prepare_base().unwrap();
    match base.refine(0.25) {
        Err(MuleError::AlphaBelowFloor { alpha, floor }) => {
            assert_eq!(alpha, 0.25);
            assert_eq!(floor, 0.5);
        }
        other => panic!("expected AlphaBelowFloor, got {:?}", other.map(|_| "ok")),
    }
    assert!(matches!(base.refine(1.5), Err(MuleError::Graph(_))));
    assert!(matches!(base.refine(f64::NAN), Err(MuleError::Graph(_))));
    assert!(base.refine(0.5).is_ok(), "α = floor is legal");
}

/// Refinement never re-runs the pipeline: the process-wide prepare
/// counter moves only for `prepare_base`, not per α.
#[test]
fn refinement_does_not_rerun_the_pipeline() {
    let g = random_graph(20, 0.4, 99);
    let before = mule::prepare::pipeline_invocations();
    let base = Query::new(&g).prepare_base().unwrap();
    assert_eq!(mule::prepare::pipeline_invocations(), before + 1);
    for alpha in ALPHA_GRID {
        let _ = base.refine(alpha).unwrap();
    }
    assert_eq!(
        mule::prepare::pipeline_invocations(),
        before + 1,
        "refine must not re-enter the prepare pipeline"
    );
}
